"""Similarity tables: evaluations × ranges × similarity lists (paper §3.2–3.3).

A similarity table for a subformula ``h`` with free object variables
``x1..xk`` and free attribute variables ``y1..ym`` has one row per relevant
evaluation: the object columns give object ids, the attribute columns give
*ranges* of values (paper §3.3), and the last column is the similarity list
of ``h`` under that evaluation.

Tables are combined with a natural join on the shared object variables
(ranges of shared attribute variables are intersected), the joined rows'
lists being merged by the operator's list algorithm (∧-merge or
until-merge).  Two join modes are provided:

* ``"inner"`` — the paper's algorithm verbatim ("simply making a join").
* ``"outer"`` — definitional-semantics mode: an evaluation present on one
  side only still produces partial similarity (``a1 + 0``), so unmatched
  rows are kept with an empty partner list, and for shared attribute
  variables the un-intersected *remainder* boxes are emitted as well.
  DESIGN.md discusses why the paper's inner join under-approximates ∃.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.ranges import FULL, Range
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.core.ops import max_merge_lists
from repro.errors import HTLTypeError, SimilarityListInvariantError

#: A list-combination operator, e.g. ``and_lists`` or an ``until`` closure.
ListOp = Callable[[SimilarityList, SimilarityList], SimilarityList]

#: Join modes.
INNER = "inner"
OUTER = "outer"

Box = Tuple[Range, ...]


@dataclass(frozen=True)
class TableRow:
    """One evaluation: object ids, attribute ranges, similarity list."""

    objects: Tuple[str, ...]
    ranges: Box
    sim: SimilarityList


class SimilarityTable:
    """A similarity table with named object/attribute columns."""

    __slots__ = ("object_vars", "attr_vars", "rows", "maximum")

    def __init__(
        self,
        object_vars: Sequence[str],
        attr_vars: Sequence[str],
        rows: Iterable[TableRow],
        maximum: float,
    ):
        self.object_vars: Tuple[str, ...] = tuple(object_vars)
        self.attr_vars: Tuple[str, ...] = tuple(attr_vars)
        self.rows: List[TableRow] = list(rows)
        self.maximum = float(maximum)
        for row in self.rows:
            if len(row.objects) != len(self.object_vars):
                raise HTLTypeError(
                    f"row has {len(row.objects)} object values for "
                    f"{len(self.object_vars)} object columns"
                )
            if len(row.ranges) != len(self.attr_vars):
                raise HTLTypeError(
                    f"row has {len(row.ranges)} ranges for "
                    f"{len(self.attr_vars)} attribute columns"
                )
            if abs(row.sim.maximum - self.maximum) > SIM_EPS:
                raise SimilarityListInvariantError(
                    f"row list max {row.sim.maximum} != table max {self.maximum}"
                )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def closed(cls, sim: SimilarityList) -> "SimilarityTable":
        """A variable-free table holding a single similarity list.

        The row is kept even when the list is empty: a join partner must
        still see the evaluation (the paper's joins never filter rows —
        only the picture system's "relevant evaluations" pruning does).
        """
        return cls((), (), [TableRow((), (), sim)], sim.maximum)

    @classmethod
    def empty(cls, maximum: float) -> "SimilarityTable":
        """A variable-free table with no rows (similarity 0 everywhere)."""
        return cls((), (), [], maximum)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def is_closed(self) -> bool:
        return not self.object_vars and not self.attr_vars

    def closed_list(self) -> SimilarityList:
        """The single list of a closed table (empty list when no rows)."""
        if not self.is_closed():
            raise HTLTypeError(
                f"table still has columns {self.object_vars + self.attr_vars}"
            )
        if not self.rows:
            return SimilarityList.empty(self.maximum)
        if len(self.rows) == 1:
            return self.rows[0].sim
        return max_merge_lists([row.sim for row in self.rows])

    def map_lists(
        self, transform: Callable[[SimilarityList], SimilarityList]
    ) -> "SimilarityTable":
        """Apply a unary list operator (next/eventually/...) to every row."""
        new_rows = []
        new_maximum = self.maximum
        for row in self.rows:
            new_sim = transform(row.sim)
            new_maximum = new_sim.maximum
            new_rows.append(TableRow(row.objects, row.ranges, new_sim))
        if not self.rows:
            # Determine the new maximum from an empty probe list.
            new_maximum = transform(SimilarityList.empty(self.maximum)).maximum
        return SimilarityTable(
            self.object_vars, self.attr_vars, new_rows, new_maximum
        )

    def binding_of(self, row: TableRow) -> Dict[str, str]:
        """The object-variable binding a row denotes."""
        return dict(zip(self.object_vars, row.objects))

    # ------------------------------------------------------------------
    # join (∧ / until combination, §3.2 first part)
    # ------------------------------------------------------------------
    def combine(
        self,
        other: "SimilarityTable",
        op: ListOp,
        mode: str = INNER,
        universe: Sequence[str] = (),
    ) -> "SimilarityTable":
        """Natural-join the two tables, merging joined lists with ``op``.

        In ``"outer"`` mode, a row kept from one side only leaves the other
        side's exclusive object variables without values; since the row's
        partial similarity holds for *every* assignment of those variables,
        it is expanded over ``universe`` (the object ids of the sequence
        under evaluation) — finite, and what ∃ quantifies over anyway.
        """
        if mode not in (INNER, OUTER):
            raise HTLTypeError(f"unknown join mode {mode!r}")
        common_obj = [v for v in self.object_vars if v in other.object_vars]
        left_only_obj = [
            v for v in self.object_vars if v not in other.object_vars
        ]
        right_only_obj = [
            v for v in other.object_vars if v not in self.object_vars
        ]
        out_object_vars = tuple(common_obj + left_only_obj + right_only_obj)

        common_attr = [v for v in self.attr_vars if v in other.attr_vars]
        left_only_attr = [v for v in self.attr_vars if v not in other.attr_vars]
        right_only_attr = [
            v for v in other.attr_vars if v not in self.attr_vars
        ]
        out_attr_vars = tuple(common_attr + left_only_attr + right_only_attr)

        empty_left = SimilarityList.empty(self.maximum)
        empty_right = SimilarityList.empty(other.maximum)
        out_maximum = op(empty_left, empty_right).maximum

        left_key = _key_extractor(self.object_vars, common_obj)
        right_key = _key_extractor(other.object_vars, common_obj)
        # Rows are matched over boxes spanning ALL output attribute
        # dimensions (FULL where a side does not constrain the variable),
        # so outer-mode remainders also cover the one-sided dimensions —
        # a row must survive for values of the partner's variables that no
        # partner row covers.
        left_full_box = _full_box_extractor(self.attr_vars, out_attr_vars)
        right_full_box = _full_box_extractor(other.attr_vars, out_attr_vars)

        right_by_key: Dict[Tuple[str, ...], List[TableRow]] = {}
        for row in other.rows:
            right_by_key.setdefault(right_key(row), []).append(row)

        out_rows: List[TableRow] = []
        matched_right_boxes: Dict[int, List[Box]] = {}
        for left_row in self.rows:
            key = left_key(left_row)
            partners = right_by_key.get(key, [])
            left_box = left_full_box(left_row)
            consumed: List[Box] = []
            for right_row in partners:
                right_box = right_full_box(right_row)
                shared = _box_intersect(left_box, right_box)
                if shared is None:
                    continue
                consumed.append(shared)
                matched_right_boxes.setdefault(
                    id(right_row), []
                ).append(shared)
                merged = op(left_row.sim, right_row.sim)
                out_rows.extend(
                    _joined_rows(
                        key, left_row, right_row, self, other,
                        shared, merged, universe,
                    )
                )
            if mode == OUTER:
                merged = op(left_row.sim, empty_right)
                if merged or not consumed:
                    for remainder in _box_difference_many(left_box, consumed):
                        out_rows.extend(
                            _joined_rows(
                                key, left_row, None, self, other,
                                remainder, merged, universe,
                            )
                        )
        if mode == OUTER:
            for right_row in other.rows:
                right_box = right_full_box(right_row)
                consumed = matched_right_boxes.get(id(right_row), [])
                merged = op(empty_left, right_row.sim)
                if merged or not consumed:
                    for remainder in _box_difference_many(right_box, consumed):
                        out_rows.extend(
                            _joined_rows(
                                right_key(right_row), None, right_row,
                                self, other, remainder, merged, universe,
                            )
                        )
        return SimilarityTable(
            out_object_vars, out_attr_vars, out_rows, out_maximum
        )

    # ------------------------------------------------------------------
    # existential projection (§3.2 second part)
    # ------------------------------------------------------------------
    def project_exists(self, quantified: Sequence[str]) -> "SimilarityTable":
        """Eliminate object variables by max-merging their rows' lists.

        The similarity of ``∃x g`` at a segment is the maximum over
        evaluations; rows agreeing on the remaining columns are merged with
        the m-way maximum merge.  When attribute-range columns remain, the
        ranges are first refined into disjoint pieces so the maximum is
        taken only among rows that genuinely overlap.
        """
        missing = [v for v in quantified if v not in self.object_vars]
        if missing:
            raise HTLTypeError(
                f"cannot project out unknown object variables {missing}"
            )
        keep_positions = [
            position
            for position, name in enumerate(self.object_vars)
            if name not in quantified
        ]
        out_object_vars = tuple(self.object_vars[p] for p in keep_positions)

        groups: Dict[Tuple[str, ...], List[TableRow]] = {}
        for row in self.rows:
            key = tuple(row.objects[p] for p in keep_positions)
            groups.setdefault(key, []).append(row)

        out_rows: List[TableRow] = []
        for key, rows in groups.items():
            for box, members in _refine_boxes(
                [(row.ranges, row) for row in rows], len(self.attr_vars)
            ):
                merged = max_merge_lists([member.sim for member in members])
                if merged:
                    out_rows.append(TableRow(key, box, merged))
        return SimilarityTable(
            out_object_vars, self.attr_vars, out_rows, self.maximum
        )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _key_extractor(
    columns: Tuple[str, ...], common: List[str]
) -> Callable[[TableRow], Tuple[str, ...]]:
    positions = [columns.index(name) for name in common]
    return lambda row: tuple(row.objects[p] for p in positions)


def _box_extractor(
    columns: Tuple[str, ...], common: List[str]
) -> Callable[[TableRow], Box]:
    positions = [columns.index(name) for name in common]
    return lambda row: tuple(row.ranges[p] for p in positions)


def _joined_rows(
    key: Tuple[str, ...],
    left_row: Optional[TableRow],
    right_row: Optional[TableRow],
    left_table: "SimilarityTable",
    right_table: "SimilarityTable",
    box: Box,
    merged: SimilarityList,
    universe: Sequence[str],
) -> List[TableRow]:
    """Assemble output rows in the canonical column order.

    ``box`` already spans every output attribute dimension.  When one
    input row is absent (outer-join remainder), the other side's exclusive
    object variables are expanded over ``universe`` — the partial
    similarity holds for every assignment of those variables.
    """
    objects: List[Optional[str]] = list(key)
    missing = 0
    for name in left_table.object_vars:
        if name not in right_table.object_vars:
            if left_row is not None:
                objects.append(
                    left_row.objects[left_table.object_vars.index(name)]
                )
            else:
                objects.append(None)
                missing += 1
    for name in right_table.object_vars:
        if name not in left_table.object_vars:
            if right_row is not None:
                objects.append(
                    right_row.objects[right_table.object_vars.index(name)]
                )
            else:
                objects.append(None)
                missing += 1
    if not missing:
        return [TableRow(tuple(objects), box, merged)]  # type: ignore[arg-type]
    rows: List[TableRow] = []
    for assignment in itertools.product(universe, repeat=missing):
        filled = list(objects)
        cursor = 0
        for position, value in enumerate(filled):
            if value is None:
                filled[position] = assignment[cursor]
                cursor += 1
        rows.append(TableRow(tuple(filled), box, merged))  # type: ignore[arg-type]
    return rows


def _full_box_extractor(
    columns: Tuple[str, ...], out_attr_vars: Tuple[str, ...]
) -> Callable[[TableRow], Box]:
    """Box over every output dimension; FULL where the side lacks the var."""
    positions = [
        columns.index(name) if name in columns else None
        for name in out_attr_vars
    ]
    def extract(row: TableRow) -> Box:
        return tuple(
            FULL if position is None else row.ranges[position]
            for position in positions
        )
    return extract


def _box_intersect(left: Box, right: Box) -> Optional[Box]:
    pieces = []
    for mine, theirs in zip(left, right):
        shared = mine.intersect(theirs)
        if shared is None:
            return None
        pieces.append(shared)
    return tuple(pieces)


def _box_difference(box: Box, removed: Box) -> List[Box]:
    """``box`` minus ``removed``, as disjoint boxes (standard k-d split)."""
    if _box_intersect(box, removed) is None:
        return [box]
    result: List[Box] = []
    current = list(box)
    for dimension, (mine, theirs) in enumerate(zip(box, removed)):
        for piece in mine.difference(theirs):
            result.append(
                tuple(current[:dimension]) + (piece,) + box[dimension + 1 :]
            )
        shared = mine.intersect(theirs)
        if shared is None:  # pragma: no cover - guarded above
            return [box]
        current[dimension] = shared
    return result


def _box_difference_many(box: Box, removed: Sequence[Box]) -> List[Box]:
    remaining = [box]
    for piece in removed:
        remaining = [
            part for current in remaining for part in _box_difference(current, piece)
        ]
        if not remaining:
            break
    return remaining


def _refine_boxes(
    boxed_rows: List[Tuple[Box, TableRow]], dimensions: int
) -> List[Tuple[Box, List[TableRow]]]:
    """Partition overlapping boxes into disjoint pieces with their owners.

    With no attribute columns every row shares the single empty box.  With
    columns, each owner's box is split against the accumulated disjoint
    pieces so every output piece has a definite owner set.
    """
    if dimensions == 0:
        if not boxed_rows:
            return []
        return [((), [row for __, row in boxed_rows])]
    pieces: List[Tuple[Box, List[TableRow]]] = []
    for box, row in boxed_rows:
        leftovers = [box]
        next_pieces: List[Tuple[Box, List[TableRow]]] = []
        for existing_box, owners in pieces:
            new_leftovers: List[Box] = []
            shared_with_existing: List[Box] = []
            for part in leftovers:
                shared = _box_intersect(part, existing_box)
                if shared is None:
                    new_leftovers.append(part)
                    continue
                shared_with_existing.append(shared)
                new_leftovers.extend(_box_difference(part, shared))
            # Split the existing piece into (shared, rest).
            rest = [existing_box]
            for shared in shared_with_existing:
                rest = [
                    piece
                    for current in rest
                    for piece in _box_difference(current, shared)
                ]
                next_pieces.append((shared, owners + [row]))
            for piece in rest:
                next_pieces.append((piece, owners))
            leftovers = new_leftovers
        for part in leftovers:
            next_pieces.append((part, [row]))
        pieces = next_pieces
    return pieces
