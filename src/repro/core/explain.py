"""Human-readable evaluation plans for HTL queries.

:func:`explain` renders the tree of operations the retrieval engine will
perform for a formula — which subformulas become picture-system atoms,
which list algorithm combines each temporal operator, where tables join
and on which variables, and where the hierarchy recursion descends.  The
same structure the paper's Figure 1 describes, but per query.

:func:`describe_node` is the per-node half of that rendering; the tracing
layer (DESIGN.md §10) uses it to name each subformula span, so the CLI
``trace`` output is the profiled twin of ``explain``.
"""

from __future__ import annotations

from typing import List

from repro.htl import ast
from repro.htl.classify import (
    FormulaClass,
    is_non_temporal,
    skeleton_class,
)
from repro.htl.pretty import pretty, pretty_term
from repro.htl.variables import free_attr_vars, free_object_vars


def explain(formula: ast.Formula) -> str:
    """The evaluation plan of a formula, as an indented tree."""
    lines: List[str] = [
        f"plan for: {_clip(pretty(formula))}",
        f"class: {skeleton_class(formula).name}",
    ]
    _describe(formula, lines, depth=0)
    return "\n".join(lines)


def _clip(text: str, limit: int = 72) -> str:
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


def _vars_note(formula: ast.Formula) -> str:
    object_vars = sorted(free_object_vars(formula))
    attr_vars = sorted(free_attr_vars(formula))
    notes = []
    if object_vars:
        notes.append(f"object vars {', '.join(object_vars)}")
    if attr_vars:
        notes.append(f"attr ranges {', '.join(attr_vars)}")
    if not notes:
        return "closed"
    return "; ".join(notes)


def _splits_mixed_conjunction(formula: ast.Formula) -> bool:
    """True for the non-temporal conjunctions the engine splits anyway
    because they mix registered atomics with metadata conditions."""
    return isinstance(formula, ast.And) and any(
        isinstance(node, ast.AtomicRef) for node in formula.walk()
    )


def describe_node(formula: ast.Formula) -> str:
    """One-line plan description of a single formula node."""
    if isinstance(formula, ast.AtomicRef):
        return f"atomic {formula.name!r}: registered similarity list"
    if is_non_temporal(formula):
        if _splits_mixed_conjunction(formula):
            return "AND-merge (sum on overlap)"
        return (
            f"atom → picture system [{_vars_note(formula)}]: "
            f"{_clip(pretty(formula), 48)}"
        )
    if isinstance(formula, ast.And):
        shared = sorted(
            free_object_vars(formula.left) & free_object_vars(formula.right)
        )
        join = f"join on {', '.join(shared)}" if shared else "cross join"
        return f"AND-merge (sum on overlap; {join})"
    if isinstance(formula, ast.Or):
        return "OR-merge (pointwise max; extension)"
    if isinstance(formula, ast.Until):
        return (
            "UNTIL backward merge (threshold left list, coalesce runs, "
            "suffix-max witnesses)"
        )
    if isinstance(formula, ast.Next):
        return "NEXT shift (intervals left by one)"
    if isinstance(formula, ast.Eventually):
        return "EVENTUALLY suffix-max scan"
    if isinstance(formula, ast.Always):
        return "ALWAYS suffix-min scan (extension)"
    if isinstance(formula, ast.Exists):
        names = ", ".join(formula.vars)
        return f"∃-projection over {names} (m-way max merge of rows)"
    if isinstance(formula, ast.Freeze):
        return (
            f"FREEZE join [{formula.var} := {pretty_term(formula.func)[:32]}] "
            "(value table × range column)"
        )
    if isinstance(formula, ast.AtNextLevel):
        return "descend one level (value at first child)"
    if isinstance(formula, ast.AtLevel):
        return f"descend to level {formula.level} (value at first descendant)"
    if isinstance(formula, ast.AtNamedLevel):
        return (
            f"descend to {formula.level_name!r} level "
            "(value at first descendant)"
        )
    if isinstance(formula, ast.Not):
        return "NOT (unsupported over temporal subformulas)"
    return type(formula).__name__  # pragma: no cover


def _add(lines: List[str], depth: int, text: str) -> None:
    lines.append("  " * depth + "- " + text)


def _describe(formula: ast.Formula, lines: List[str], depth: int) -> None:
    _add(lines, depth, describe_node(formula))
    if isinstance(formula, ast.AtomicRef):
        return
    if is_non_temporal(formula):
        if _splits_mixed_conjunction(formula):
            _describe(formula.left, lines, depth + 1)
            _describe(formula.right, lines, depth + 1)
        return
    for child in formula.children():
        _describe(child, lines, depth + 1)
