"""Human-readable evaluation plans for HTL queries.

:func:`explain` renders the tree of operations the retrieval engine will
perform for a formula — which subformulas become picture-system atoms,
which list algorithm combines each temporal operator, where tables join
and on which variables, and where the hierarchy recursion descends.  The
same structure the paper's Figure 1 describes, but per query.
"""

from __future__ import annotations

from typing import List

from repro.htl import ast
from repro.htl.classify import (
    FormulaClass,
    is_non_temporal,
    skeleton_class,
)
from repro.htl.pretty import pretty, pretty_term
from repro.htl.variables import free_attr_vars, free_object_vars


def explain(formula: ast.Formula) -> str:
    """The evaluation plan of a formula, as an indented tree."""
    lines: List[str] = [
        f"plan for: {_clip(pretty(formula))}",
        f"class: {skeleton_class(formula).name}",
    ]
    _describe(formula, lines, depth=0)
    return "\n".join(lines)


def _clip(text: str, limit: int = 72) -> str:
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


def _vars_note(formula: ast.Formula) -> str:
    object_vars = sorted(free_object_vars(formula))
    attr_vars = sorted(free_attr_vars(formula))
    notes = []
    if object_vars:
        notes.append(f"object vars {', '.join(object_vars)}")
    if attr_vars:
        notes.append(f"attr ranges {', '.join(attr_vars)}")
    if not notes:
        return "closed"
    return "; ".join(notes)


def _add(lines: List[str], depth: int, text: str) -> None:
    lines.append("  " * depth + "- " + text)


def _describe(formula: ast.Formula, lines: List[str], depth: int) -> None:
    if isinstance(formula, ast.AtomicRef):
        _add(
            lines,
            depth,
            f"atomic {formula.name!r}: registered similarity list",
        )
        return
    if is_non_temporal(formula):
        if isinstance(formula, ast.And) and any(
            isinstance(node, ast.AtomicRef) for node in formula.walk()
        ):
            # The engine splits conjunctions mixing registered atomics
            # with metadata conditions.
            _add(lines, depth, "AND-merge (sum on overlap)")
            _describe(formula.left, lines, depth + 1)
            _describe(formula.right, lines, depth + 1)
            return
        _add(
            lines,
            depth,
            f"atom → picture system [{_vars_note(formula)}]: "
            f"{_clip(pretty(formula), 48)}",
        )
        return
    if isinstance(formula, ast.And):
        shared = sorted(
            free_object_vars(formula.left) & free_object_vars(formula.right)
        )
        join = f"join on {', '.join(shared)}" if shared else "cross join"
        _add(lines, depth, f"AND-merge (sum on overlap; {join})")
        _describe(formula.left, lines, depth + 1)
        _describe(formula.right, lines, depth + 1)
        return
    if isinstance(formula, ast.Or):
        _add(lines, depth, "OR-merge (pointwise max; extension)")
        _describe(formula.left, lines, depth + 1)
        _describe(formula.right, lines, depth + 1)
        return
    if isinstance(formula, ast.Until):
        _add(
            lines,
            depth,
            "UNTIL backward merge (threshold left list, coalesce runs, "
            "suffix-max witnesses)",
        )
        _describe(formula.left, lines, depth + 1)
        _describe(formula.right, lines, depth + 1)
        return
    if isinstance(formula, ast.Next):
        _add(lines, depth, "NEXT shift (intervals left by one)")
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.Eventually):
        _add(lines, depth, "EVENTUALLY suffix-max scan")
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.Always):
        _add(lines, depth, "ALWAYS suffix-min scan (extension)")
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.Exists):
        names = ", ".join(formula.vars)
        _add(
            lines,
            depth,
            f"∃-projection over {names} (m-way max merge of rows)",
        )
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.Freeze):
        _add(
            lines,
            depth,
            f"FREEZE join [{formula.var} := {pretty_term(formula.func)[:32]}] "
            "(value table × range column)",
        )
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.AtNextLevel):
        _add(lines, depth, "descend one level (value at first child)")
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.AtLevel):
        _add(
            lines,
            depth,
            f"descend to level {formula.level} (value at first descendant)",
        )
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.AtNamedLevel):
        _add(
            lines,
            depth,
            f"descend to {formula.level_name!r} level "
            "(value at first descendant)",
        )
        _describe(formula.sub, lines, depth + 1)
        return
    if isinstance(formula, ast.Not):
        _add(lines, depth, "NOT (unsupported over temporal subformulas)")
        _describe(formula.sub, lines, depth + 1)
        return
    _add(lines, depth, f"{type(formula).__name__}")  # pragma: no cover
