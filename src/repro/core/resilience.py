"""Fault-tolerant query execution: budgets, breakers, degraded fallbacks.

The ROADMAP's north star is a production-scale retrieval service, and a
service cannot afford what the bare engine does today on bad input or bad
luck — run without bound, or surface an arbitrary exception with no
partial answer.  This module is the resilience layer the rest of the
engine threads through (DESIGN.md §8):

* :class:`QueryBudget` — a wall-clock deadline plus a cooperative step
  budget, checked from the hot loops (atom-scoring sweeps, list-algebra
  merges, top-k streaming) via :func:`current_budget`.  Overruns raise
  the typed :class:`~repro.errors.BudgetExceededError`.
* :class:`CircuitBreaker` — a deterministic closed/open/half-open
  breaker that takes a repeatedly failing degraded path out of rotation
  and probes it again after a cooldown.
* :class:`ResiliencePolicy` / :class:`ResilienceContext` — how a caller
  opts into lenient (best-effort, partial-result) execution and the
  degraded fallback chain; the context travels in a thread-local so the
  picture substrate and the top-k worker threads see the same budget,
  policy and breakers without signature plumbing.
* :func:`evaluate_with_fallback` — the degraded chain for one video:
  primary engine → naive-atom engine (the index-free oracle
  configuration) → SQL baseline (type (1) formulas over registered
  atomic lists only).  Every hop is recorded through the always-on event
  counters of :mod:`repro.core.instrument`.
* Fault sites — named hook points (:data:`FAULT_SITES`) where the
  deterministic injector of :mod:`repro.testing.faults` can raise,
  delay, or corrupt values.  With no hook installed each site costs one
  global ``None`` check.

Lives under :mod:`repro.core` next to :mod:`repro.core.instrument` so
the picture layer and the list algebra can import it without cycles; the
engine/SQL imports inside :func:`evaluate_with_fallback` are deferred
for the same reason.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, Optional, TYPE_CHECKING

from repro.core import instrument, trace
from repro.errors import BudgetExceededError, CircuitOpenError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine import RetrievalEngine
    from repro.core.simlist import SimilarityList
    from repro.htl import ast
    from repro.model.database import VideoDatabase
    from repro.model.hierarchy import Video


# ---------------------------------------------------------------------------
# fault sites
# ---------------------------------------------------------------------------
#: Registered fault sites — the points where the deterministic injector
#: may interpose.  Each name appears in exactly one production hook.
SITE_INDEX_LOOKUP = "index-lookup"
SITE_ATOM_SCORE = "atom-score"
SITE_LIST_MERGE = "list-merge"
SITE_TOPK_WORKER = "topk-worker"
#: Disk fault sites of :mod:`repro.store` (DESIGN.md §9): the write of a
#: snapshot temp file, the fsync/rename that makes it durable, and every
#: artifact read on the load path.  ``corrupt`` at the read site flips
#: bits in the bytes coming off "disk" — the injector's model of rot.
SITE_STORE_WRITE = "store-write"
SITE_STORE_FSYNC = "store-fsync"
SITE_STORE_READ = "store-read"
#: Shard fault site of :mod:`repro.shard`: the load of one shard's
#: database at scatter time.  A raise here models a dead or corrupt
#: shard — lenient queries degrade to the surviving shards, strict
#: queries abort with :class:`~repro.errors.ShardError`.
SITE_SHARD_LOAD = "shard-load"
#: Serving fault sites of :mod:`repro.serve` (DESIGN.md §14): admission
#: control (a raise here refuses the request before it is admitted, so
#: the conservation ledger never sees it), the worker's pre-execution
#: hook (a raise models a wedged engine — the request retries on the
#: pool and finally degrades to a partial result), and the drain loop
#: (a raise mid-shutdown must not leave any admitted request
#: unresolved).
SITE_SERVE_ADMIT = "serve-admit"
SITE_SERVE_WORKER = "serve-worker"
SITE_SERVE_DRAIN = "serve-drain"
#: Ingest fault sites of :mod:`repro.ingest` (DESIGN.md §15): the write
#: of one framed WAL record (``short_write`` here leaves a real torn
#: record on disk), the fsync that makes a batch durable (a raise models
#: a crash before the commit marker moves), every record read on the
#: replay path (``corrupt`` flips bits in committed bytes), and the
#: delta-manifest replace that is a checkpoint's commit point.
SITE_WAL_APPEND = "wal-append"
SITE_WAL_FSYNC = "wal-fsync"
SITE_WAL_REPLAY = "wal-replay"
SITE_COMPACT_COMMIT = "compact-commit"
#: Analyzer fault site of :mod:`repro.analyzer.annotate` (DESIGN.md §16):
#: the construction of one shot's content signature.  A raise here models
#: a failing feature extractor — annotation degrades to signature-less
#: metadata for that shot (query-by-example sees it score 0) instead of
#: aborting the whole analysis.
SITE_SIGNATURE_BUILD = "signature-build"

FAULT_SITES = (
    SITE_INDEX_LOOKUP,
    SITE_ATOM_SCORE,
    SITE_LIST_MERGE,
    SITE_TOPK_WORKER,
    SITE_STORE_WRITE,
    SITE_STORE_FSYNC,
    SITE_STORE_READ,
    SITE_SHARD_LOAD,
    SITE_SERVE_ADMIT,
    SITE_SERVE_WORKER,
    SITE_SERVE_DRAIN,
    SITE_WAL_APPEND,
    SITE_WAL_FSYNC,
    SITE_WAL_REPLAY,
    SITE_COMPACT_COMMIT,
    SITE_SIGNATURE_BUILD,
)

#: The installed fault hook (``None`` in production).  A hook is an object
#: with ``trip(site)`` (may raise or delay) and ``corrupt(site, value)``
#: (returns the possibly-corrupted value); see
#: :class:`repro.testing.faults.FaultInjector`.
_fault_hook: Optional[Any] = None


def set_fault_hook(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with ``None``) the fault hook; returns the old one."""
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    return previous


def fault(site: str) -> None:
    """Production-side fault hook: raises/delays when an injector is active."""
    hook = _fault_hook
    if hook is not None:
        hook.trip(site)


def fault_value(site: str, value: Any) -> Any:
    """Production-side corruption hook: passes ``value`` through the injector."""
    hook = _fault_hook
    if hook is not None:
        return hook.corrupt(site, value)
    return value


def fault_short_write(site: str, data: bytes) -> Optional[bytes]:
    """Production-side short-write hook: a truncated prefix, or ``None``.

    When an injector with a ``short_write`` spec is armed at this site it
    returns a strict prefix of ``data``; the caller is expected to write
    *those* bytes and then fail as if the process died mid-write, leaving
    a genuinely torn record on disk.  ``None`` (the production constant)
    means write normally.
    """
    hook = _fault_hook
    if hook is not None:
        shorten = getattr(hook, "shorten", None)
        if shorten is not None:
            return shorten(site, data)
    return None


# ---------------------------------------------------------------------------
# budgets
# ---------------------------------------------------------------------------
class QueryBudget:
    """A cooperative execution budget: wall-clock deadline + step ceiling.

    The hot loops call :meth:`charge` with the amount of work they are
    about to do (entries merged, segments scored, heap pushes).  Steps are
    counted exactly; the clock is consulted only every
    ``check_interval`` steps (and on every :meth:`checkpoint`), so an
    active budget costs an integer add and compare per charge — measured
    at under 5% on the sparse-5k atom-table benchmark
    (``benchmarks/bench_chaos_recovery.py``).

    ``clock`` is injectable for deterministic tests and must be monotone.
    A budget may be shared across threads: the step counter is duplicated
    per thread only in the sense that charges race benignly (the count is
    advisory, the deadline is authoritative).
    """

    __slots__ = (
        "deadline_ms",
        "max_steps",
        "steps",
        "_clock",
        "_started",
        "_deadline_at",
        "_next_check",
        "check_interval",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        check_interval: int = 256,
    ):
        if deadline_ms is not None and deadline_ms <= 0:
            raise BudgetExceededError(
                f"deadline must be positive, got {deadline_ms}ms"
            )
        if max_steps is not None and max_steps <= 0:
            raise BudgetExceededError(
                f"step budget must be positive, got {max_steps}"
            )
        self.deadline_ms = deadline_ms
        self.max_steps = max_steps
        self.steps = 0
        self._clock = clock
        self._started = clock()
        self._deadline_at = (
            self._started + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        self.check_interval = max(1, int(check_interval))
        self._next_check = self.check_interval

    # ------------------------------------------------------------------
    def elapsed_ms(self) -> float:
        """Wall-clock milliseconds since the budget was created."""
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline (None without one, floored at 0)."""
        if self._deadline_at is None:
            return None
        return max(0.0, (self._deadline_at - self._clock()) * 1000.0)

    def expired(self) -> bool:
        """True when the deadline has passed or the step ceiling is hit."""
        if self.max_steps is not None and self.steps > self.max_steps:
            return True
        return (
            self._deadline_at is not None
            and self._clock() > self._deadline_at
        )

    # ------------------------------------------------------------------
    def charge(self, n: int = 1, site: str = "") -> None:
        """Consume ``n`` cooperative steps; raise when the budget is gone.

        The deadline clock is read only every ``check_interval`` steps,
        keeping the per-iteration cost of an active budget to an integer
        add and two compares.
        """
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            self._overrun(site)
        if self._deadline_at is not None and self.steps >= self._next_check:
            self._next_check = self.steps + self.check_interval
            if self._clock() > self._deadline_at:
                self._overrun(site)

    def checkpoint(self, site: str = "") -> None:
        """Force a deadline check now (used at coarse boundaries)."""
        if self.expired():
            self._overrun(site)

    def _overrun(self, site: str) -> None:
        instrument.count(instrument.BUDGET_EXCEEDED)
        trace.event(
            instrument.BUDGET_EXCEEDED,
            f"site={site or '?'} steps={self.steps} "
            f"elapsed={self.elapsed_ms():.1f}ms",
        )
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceededError(
                f"step budget of {self.max_steps} exhausted after "
                f"{self.steps} steps",
                site=site,
                steps=self.steps,
                elapsed_ms=self.elapsed_ms(),
            )
        raise BudgetExceededError(
            f"deadline of {self.deadline_ms:g}ms exceeded after "
            f"{self.elapsed_ms():.1f}ms",
            site=site,
            steps=self.steps,
            elapsed_ms=self.elapsed_ms(),
        )


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """A deterministic circuit breaker over a fallible path.

    After ``failure_threshold`` *consecutive* failures the breaker opens:
    :meth:`allow` refuses the next ``cooldown`` probes outright (the
    caller goes straight to its fallback).  The probe after the cooldown
    runs half-open: one trial call is admitted; success closes the
    breaker, failure re-opens it for another cooldown.  Counted in probe
    calls rather than wall-clock so chaos tests replay identically.

    Thread-safe; breakers are shared across the top-k worker pool.
    """

    __slots__ = (
        "name",
        "failure_threshold",
        "cooldown",
        "_state",
        "_failures",
        "_refusals",
        "_lock",
    )

    def __init__(
        self, name: str, failure_threshold: int = 3, cooldown: int = 8
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._state = CLOSED
        self._failures = 0
        self._refusals = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May the protected path be attempted right now?"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                self._refusals += 1
                if self._refusals >= self.cooldown:
                    self._state = HALF_OPEN
                    instrument.count(f"breaker-{self.name}-half-open")
                    trace.event(
                        f"breaker-{self.name}-half-open",
                        "cooldown elapsed; admitting one trial probe",
                    )
                    return True
                return False
            # Half-open: one trial in flight; refuse concurrent probes.
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state != CLOSED:
                instrument.count(instrument.BREAKER_RECOVERED)
                trace.event(
                    instrument.BREAKER_RECOVERED,
                    f"breaker {self.name!r} closed after a successful probe",
                )
            self._state = CLOSED
            self._failures = 0
            self._refusals = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._failures >= self.failure_threshold
            ):
                if self._state != OPEN:
                    instrument.count(instrument.BREAKER_OPENED)
                    trace.event(
                        instrument.BREAKER_OPENED,
                        f"breaker {self.name!r} opened after "
                        f"{self._failures} consecutive failures",
                    )
                self._state = OPEN
                self._refusals = 0

    def guard(self) -> None:
        """Raise :class:`~repro.errors.CircuitOpenError` unless allowed."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is open", breaker=self.name
            )


# ---------------------------------------------------------------------------
# policy and context
# ---------------------------------------------------------------------------
STRICT = "strict"
LENIENT = "lenient"


@dataclass(frozen=True)
class ResiliencePolicy:
    """How much degradation a query tolerates.

    ``mode`` — :data:`STRICT` propagates the first per-video failure out
    of ``top_k_across_videos``; :data:`LENIENT` records it in the result's
    per-video outcomes and keeps ranking the rest (``partial=True``).
    ``atom_fallback`` — a failing index-driven atom table is rebuilt with
    the naive oracle scorer for that call.  ``engine_fallback`` — a
    failing whole-video evaluation is retried on the naive-atom engine
    and, for type (1) formulas over registered atomic lists, on the SQL
    baseline.  The breaker knobs govern every breaker the context mints.
    """

    mode: str = STRICT
    atom_fallback: bool = True
    engine_fallback: bool = True
    breaker_threshold: int = 3
    breaker_cooldown: int = 8

    def __post_init__(self) -> None:
        if self.mode not in (STRICT, LENIENT):
            raise ValueError(f"unknown resilience mode {self.mode!r}")

    @property
    def lenient(self) -> bool:
        return self.mode == LENIENT


class ResilienceContext:
    """One query's budget, policy, and breaker registry.

    Installed in a thread-local by :func:`activate`; worker threads
    re-install the submitting thread's context so the whole fan-out sees
    one budget and one set of breakers.
    """

    __slots__ = ("policy", "budget", "_breakers", "_lock")

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        budget: Optional[QueryBudget] = None,
    ):
        self.policy = policy or ResiliencePolicy()
        self.budget = budget
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, name: str) -> CircuitBreaker:
        """The named breaker, minted on first use with the policy's knobs."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    name,
                    failure_threshold=self.policy.breaker_threshold,
                    cooldown=self.policy.breaker_cooldown,
                )
            return breaker


_tls = threading.local()


def current() -> Optional[ResilienceContext]:
    """The active context of this thread (None outside resilient scopes)."""
    return getattr(_tls, "context", None)


def current_budget() -> Optional[QueryBudget]:
    """The active budget of this thread, if any — the hot-loop accessor."""
    context = getattr(_tls, "context", None)
    return context.budget if context is not None else None


@contextmanager
def activate(context: Optional[ResilienceContext]) -> Iterator[None]:
    """Install ``context`` as this thread's active resilience context."""
    previous = getattr(_tls, "context", None)
    _tls.context = context
    try:
        yield
    finally:
        _tls.context = previous


@contextmanager
def scope(
    budget: Optional[QueryBudget] = None,
    policy: Optional[ResiliencePolicy] = None,
) -> Iterator[ResilienceContext]:
    """Convenience: build a context and activate it in one step."""
    context = ResilienceContext(policy=policy, budget=budget)
    with activate(context):
        yield context


# ---------------------------------------------------------------------------
# the degraded fallback chain
# ---------------------------------------------------------------------------
def _is_type1_over_atomics(formula: "ast.Formula") -> bool:
    """True when every leaf is an AtomicRef (the SQL baseline's class)."""
    from repro.htl import ast as _ast
    from repro.htl.classify import FormulaClass, paper_class

    try:
        if paper_class(formula) is not FormulaClass.TYPE1:
            return False
    except Exception:
        return False
    return all(
        not isinstance(node, (_ast.Present, _ast.Compare, _ast.Rel))
        for node in formula.walk()
    )


def _sql_baseline(
    engine: "RetrievalEngine",
    formula: "ast.Formula",
    video: "Video",
    level: int,
    database: "VideoDatabase",
) -> "SimilarityList":
    """Last hop of the chain: re-evaluate on the SQL baseline system.

    Only defined for type (1) formulas whose atomic lists are registered
    for this video and level, under the paper's default inner-join
    configuration (the SQL translation implements exactly that mode);
    anything else raises so the caller surfaces the original failure.
    """
    from repro.core.tables import INNER
    from repro.errors import UnsupportedFormulaError
    from repro.htl import ast as _ast
    from repro.sqlbaseline.system import SQLRetrievalSystem

    if engine.config.join_mode != INNER:
        raise UnsupportedFormulaError(
            "the SQL baseline implements the paper's inner-join mode only"
        )
    if not _is_type1_over_atomics(formula):
        raise UnsupportedFormulaError(
            "the SQL baseline evaluates type (1) formulas over registered "
            "atomic lists only"
        )
    names = {
        node.name for node in formula.walk() if isinstance(node, _ast.AtomicRef)
    }
    lists = {}
    for name in sorted(names):
        sim = database.atomic_list(name, video.name, level)
        if sim is None:
            raise UnsupportedFormulaError(
                f"atomic predicate {name!r} has no similarity list "
                f"registered for video {video.name!r} at level {level}"
            )
        lists[name] = sim
    system = SQLRetrievalSystem(threshold=engine.config.until_threshold)
    system.load_segments(len(video.nodes_at_level(level)))
    for name, sim in lists.items():
        system.load_atomic(name, sim)
    return system.evaluate(formula)


def evaluate_with_fallback(
    engine: "RetrievalEngine",
    formula: "ast.Formula",
    video: "Video",
    level: int,
    database: Optional["VideoDatabase"],
    context: Optional[ResilienceContext] = None,
) -> "SimilarityList":
    """Evaluate one video through the degraded fallback chain.

    Chain: the configured engine (index-driven atoms, with the per-atom
    fallback of the picture layer underneath) → a naive-atom engine (the
    oracle configuration, no cache) → the SQL baseline (type (1) over
    registered atomics only).  :class:`~repro.errors.BudgetExceededError`
    is never absorbed — a blown deadline must abort, not degrade.  When
    every hop fails, the *primary* error propagates; hops are guarded by
    the context's ``engine`` and ``engine-sql`` breakers so a wedged
    fallback path stops being probed.  Every engaged hop bumps the
    matching :mod:`repro.core.instrument` counter.
    """
    from repro.core.engine import RetrievalEngine as _Engine

    if context is None:
        context = current()
    try:
        return engine.evaluate_video(
            formula, video, level=level, database=database
        )
    except BudgetExceededError:
        raise
    except Exception as primary:
        if context is None or not context.policy.engine_fallback:
            raise
        breaker = context.breaker("engine")
        if breaker.allow():
            try:
                naive = _Engine(
                    replace(
                        engine.config, naive_atoms=True, prune_atoms=False
                    )
                )
                result = naive.evaluate_video(
                    formula, video, level=level, database=database
                )
                breaker.record_success()
                instrument.count(instrument.ENGINE_FALLBACK)
                trace.event(
                    instrument.ENGINE_FALLBACK,
                    f"primary engine failed with {type(primary).__name__}; "
                    "naive-atom engine answered",
                )
                return result
            except BudgetExceededError:
                raise
            except Exception:
                breaker.record_failure()
        else:
            instrument.count("breaker-engine-refused")
            trace.event(
                "breaker-engine-refused",
                "engine breaker open; skipping the naive-atom hop",
            )
        sql_breaker = context.breaker("engine-sql")
        if database is not None and sql_breaker.allow():
            try:
                result = _sql_baseline(engine, formula, video, level, database)
                sql_breaker.record_success()
                instrument.count(instrument.SQL_FALLBACK)
                trace.event(
                    instrument.SQL_FALLBACK,
                    "naive-atom hop unavailable; SQL baseline answered",
                )
                return result
            except BudgetExceededError:
                raise
            except Exception:
                sql_breaker.record_failure()
        raise primary
