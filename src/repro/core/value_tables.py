"""Value tables for the freeze operator (paper §3.3).

The value of an attribute function ``q`` (e.g. ``height(x)``) over a video
is represented by a table ``R`` whose first columns give values of the
object variables free in ``q``, whose next column gives the value of ``q``,
and whose last column is a list of intervals of segment ids where ``q``
takes that value under that evaluation.

The freeze join combines ``R`` with the similarity table of the freeze
body: rows agree on common object variables, the captured value must fall
in the body row's range for the frozen variable, and the output similarity
list is the body list restricted to the value intervals (keeping the body
list's values on the intersections).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.intervals import Interval, coalesce
from repro.core.simlist import SimEntry, SimilarityList
from repro.core.tables import SimilarityTable, TableRow
from repro.errors import HTLTypeError
from repro.htl import ast
from repro.htl.variables import term_attr_vars, term_object_vars
from repro.model.metadata import SegmentMetadata
from repro.pictures.scoring import eval_term

CapturedValue = Union[str, int, float]


@dataclass(frozen=True)
class ValueRow:
    """One row of a value table: evaluation, captured value, id intervals."""

    objects: Tuple[str, ...]
    value: CapturedValue
    intervals: Tuple[Interval, ...]


class ValueTable:
    """The table ``R`` of paper §3.3 for one attribute function."""

    __slots__ = ("object_vars", "rows")

    def __init__(self, object_vars: Sequence[str], rows: Sequence[ValueRow]):
        self.object_vars: Tuple[str, ...] = tuple(object_vars)
        self.rows: List[ValueRow] = list(rows)

    def __len__(self) -> int:
        return len(self.rows)


def build_value_table(
    func: ast.AttrFunc, segments: Sequence[SegmentMetadata]
) -> ValueTable:
    """Materialise the value table of ``func`` over a segment sequence.

    Evaluations range over the object ids appearing in the sequence; the
    captured value at a segment is the attribute value there (confidence is
    irrelevant to *capturing* — the freeze stores the value itself).
    """
    if term_attr_vars(func):
        raise HTLTypeError(
            "freeze may not capture an expression over attribute variables: "
            f"{func!r}"
        )
    object_vars = sorted(term_object_vars(func))
    universe = _sequence_universe(segments)

    rows: Dict[Tuple[Tuple[str, ...], CapturedValue], List[int]] = {}
    for evaluation in _evaluations(object_vars, universe):
        binding = dict(zip(object_vars, evaluation))
        for segment_id, segment in enumerate(segments, start=1):
            result = eval_term(func, segment, binding)
            if result is None:
                continue
            rows.setdefault((evaluation, result[0]), []).append(segment_id)
    value_rows = [
        ValueRow(objects, value, tuple(coalesce(_runs(ids))))
        for (objects, value), ids in rows.items()
    ]
    return ValueTable(object_vars, value_rows)


def _sequence_universe(segments: Sequence[SegmentMetadata]) -> List[str]:
    seen: Dict[str, None] = {}
    for segment in segments:
        for object_id in segment.object_ids():
            seen.setdefault(object_id, None)
    return list(seen)


def _evaluations(
    object_vars: Sequence[str], universe: Sequence[str]
) -> List[Tuple[str, ...]]:
    if not object_vars:
        return [()]
    import itertools

    return list(itertools.product(universe, repeat=len(object_vars)))


def _runs(segment_ids: List[int]) -> List[Interval]:
    """Compress a sorted id list into intervals."""
    intervals: List[Interval] = []
    start = previous = None
    for segment_id in segment_ids:
        if previous is not None and segment_id == previous + 1:
            previous = segment_id
            continue
        if start is not None:
            intervals.append(Interval(start, previous))
        start = previous = segment_id
    if start is not None:
        intervals.append(Interval(start, previous))
    return intervals


def restrict_to_intervals(
    sim: SimilarityList, intervals: Sequence[Interval]
) -> SimilarityList:
    """The body list restricted to the captured-value intervals.

    Paper §3.3: "If the interval of I and J intersect then we generate an
    entry ... whose interval part is this intersection and whose similarity
    value is same as that from I."  Linear two-pointer merge.
    """
    pieces: List[Tuple[Tuple[int, int], float]] = []
    entry_index = 0
    entries = sim.entries
    for interval in sorted(intervals):
        while entry_index < len(entries) and entries[entry_index].end < interval.begin:
            entry_index += 1
        probe = entry_index
        while probe < len(entries) and entries[probe].begin <= interval.end:
            shared = entries[probe].interval.intersection(interval)
            if shared is not None:
                pieces.append(
                    ((shared.begin, shared.end), entries[probe].actual)
                )
            probe += 1
    # from_entries re-canonicalises: adjacent equal-valued pieces produced
    # by adjacent capture intervals must coalesce, or list equality breaks.
    return SimilarityList.from_entries(pieces, sim.maximum)


def freeze_join(
    body_table: SimilarityTable,
    frozen_var: str,
    value_table: ValueTable,
) -> SimilarityTable:
    """The freeze join of paper §3.3.

    Joins the body's similarity table with the value table on common object
    variables and on "captured value ∈ frozen-variable range"; the frozen
    variable's column disappears from the output.
    """
    if frozen_var not in body_table.attr_vars:
        # The body never constrains the frozen variable: the freeze is a
        # no-op apart from scoping, but the capture must still be possible
        # somewhere, so restrict to segments where q is defined.
        return _freeze_join_unconstrained(body_table, value_table)
    var_position = body_table.attr_vars.index(frozen_var)
    out_attr_vars = tuple(
        name for name in body_table.attr_vars if name != frozen_var
    )
    common_obj = [
        name for name in body_table.object_vars if name in value_table.object_vars
    ]
    value_only_obj = [
        name for name in value_table.object_vars
        if name not in body_table.object_vars
    ]
    out_object_vars = body_table.object_vars + tuple(value_only_obj)

    by_key: Dict[Tuple[str, ...], List[ValueRow]] = {}
    key_positions = [value_table.object_vars.index(name) for name in common_obj]
    extra_positions = [
        value_table.object_vars.index(name) for name in value_only_obj
    ]
    for value_row in value_table.rows:
        key = tuple(value_row.objects[p] for p in key_positions)
        by_key.setdefault(key, []).append(value_row)

    body_key_positions = [
        body_table.object_vars.index(name) for name in common_obj
    ]
    out_rows: List[TableRow] = []
    for body_row in body_table.rows:
        key = tuple(body_row.objects[p] for p in body_key_positions)
        var_range = body_row.ranges[var_position]
        kept_ranges = tuple(
            r for p, r in enumerate(body_row.ranges) if p != var_position
        )
        for value_row in by_key.get(key, []):
            if not var_range.contains(value_row.value):
                continue
            restricted = restrict_to_intervals(body_row.sim, value_row.intervals)
            if not restricted:
                continue
            extras = tuple(value_row.objects[p] for p in extra_positions)
            out_rows.append(
                TableRow(body_row.objects + extras, kept_ranges, restricted)
            )
    return SimilarityTable(
        out_object_vars, out_attr_vars, out_rows, body_table.maximum
    )


def _freeze_join_unconstrained(
    body_table: SimilarityTable, value_table: ValueTable
) -> SimilarityTable:
    """Freeze whose variable the body ignores: keep segments where the
    captured attribute is defined under a compatible evaluation."""
    common_obj = [
        name for name in body_table.object_vars if name in value_table.object_vars
    ]
    value_only_obj = [
        name for name in value_table.object_vars
        if name not in body_table.object_vars
    ]
    out_object_vars = body_table.object_vars + tuple(value_only_obj)
    key_positions = [value_table.object_vars.index(name) for name in common_obj]
    extra_positions = [
        value_table.object_vars.index(name) for name in value_only_obj
    ]
    by_key: Dict[Tuple[str, ...], Dict[Tuple[str, ...], List[Interval]]] = {}
    for value_row in value_table.rows:
        key = tuple(value_row.objects[p] for p in key_positions)
        extras = tuple(value_row.objects[p] for p in extra_positions)
        bucket = by_key.setdefault(key, {})
        bucket.setdefault(extras, []).extend(value_row.intervals)

    body_key_positions = [
        body_table.object_vars.index(name) for name in common_obj
    ]
    out_rows: List[TableRow] = []
    for body_row in body_table.rows:
        key = tuple(body_row.objects[p] for p in body_key_positions)
        for extras, intervals in by_key.get(key, {}).items():
            restricted = restrict_to_intervals(
                body_row.sim, coalesce(intervals)
            )
            if restricted:
                out_rows.append(
                    TableRow(
                        body_row.objects + extras, body_row.ranges, restricted
                    )
                )
    return SimilarityTable(
        out_object_vars, body_table.attr_vars, out_rows, body_table.maximum
    )
