"""Per-query tracing and the process metrics registry (DESIGN.md §10).

The paper's experimental story (§5, Tables 5–6, Figure 2) attributes
retrieval cost to individual operators — atom scoring vs. list algebra
vs. ranking — and this module is where that attribution lives:

* :class:`MetricsRegistry` — the thread-safe home of the flat metrics the
  old ``repro.core.instrument`` globals used to hold: event counters
  (always on), per-stage wall-clock totals and latency histograms with
  p50/p95/p99 (collected while :meth:`~MetricsRegistry.enable`\\ d).  One
  process-wide instance, :data:`METRICS`, backs the
  :mod:`repro.core.instrument` compatibility facade.  All mutation happens
  in place under one lock, so a ``reset()`` racing a worker thread can
  never strand updates in a discarded dict, and :meth:`~MetricsRegistry.
  drain` snapshots-and-clears atomically (counts are conserved across
  drains by construction).
* :class:`TraceRecorder` / :class:`Span` — hierarchical per-query trace
  spans (query → video → subformula → atom-sweep / list-op / top-k) with
  wall-clock, call counts, counter deltas and events attached per span.
  The recorder is installed in a thread-local by :func:`recording`;
  worker threads join a fan-out with :func:`capture`/:func:`adopt`, so
  the span tree stays correctly parented under the top-k thread pool.
* :func:`staged_span` — the bridge: one ``perf_counter`` pair per
  instrumented region feeds *both* the legacy stage totals and the span,
  so a span tree's per-stage rollup reconciles with
  ``instrument.totals()`` exactly, not approximately.

When no recorder is installed every span site costs one thread-local
attribute read (gated by ``benchmarks/bench_trace_overhead.py``); when no
recorder is installed *and* metrics are disabled, :func:`staged_span`
adds one boolean check on top.

Lives under :mod:`repro.core` below :mod:`repro.core.instrument` (which
imports it) so the engine, the picture layer and the store can all
import it without cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

__all__ = [
    "ATOM_SCORING",
    "LIST_ALGEBRA",
    "TOP_K",
    "KIND_QUERY",
    "KIND_SHARD",
    "KIND_VIDEO",
    "KIND_EVALUATE",
    "KIND_SUBFORMULA",
    "KIND_ATOM_SWEEP",
    "KIND_LIST_OP",
    "KIND_TOPK",
    "KIND_TO_STAGE",
    "StageTotal",
    "HistogramSummary",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "SpanEvent",
    "Span",
    "TraceRecorder",
    "current",
    "current_span",
    "recording",
    "capture",
    "adopt",
    "span",
    "staged_span",
    "event",
    "bump",
    "annotate",
    "stage_breakdown",
    "render_text",
]

#: Canonical stage names used across the engine.  Defined here (rather
#: than in :mod:`repro.core.instrument`, which re-exports them) so the
#: kind→stage mapping below needs no upward import.
ATOM_SCORING = "atom-scoring"
LIST_ALGEBRA = "list-algebra"
TOP_K = "top-k"

#: Span kinds.  A span's kind says which layer emitted it; the
#: :data:`KIND_TO_STAGE` map says which legacy stage (if any) its
#: duration is attributed to.
KIND_SERVE = "serve"
KIND_QUERY = "query"
KIND_SHARD = "shard"
KIND_VIDEO = "video"
KIND_EVALUATE = "evaluate"
KIND_SUBFORMULA = "subformula"
KIND_ATOM_SWEEP = "atom-sweep"
KIND_LIST_OP = "list-op"
KIND_TOPK = "top-k"

#: Which stage a span kind's wall-clock rolls up into.  Only the three
#: leaf kinds map — container spans (query/video/subformula) overlap
#: their children and must not be double-counted.
KIND_TO_STAGE = {
    KIND_ATOM_SWEEP: ATOM_SCORING,
    KIND_LIST_OP: LIST_ALGEBRA,
    KIND_TOPK: TOP_K,
}


@dataclass
class StageTotal:
    """Accumulated wall-clock seconds and entry count of one stage."""

    seconds: float = 0.0
    calls: int = 0


@dataclass(frozen=True)
class HistogramSummary:
    """An immutable percentile summary of one latency histogram."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


#: Raw samples kept per histogram before deterministic decimation.
_HISTOGRAM_CAP = 4096


class Histogram:
    """A latency histogram: exact count/total/min/max, sampled percentiles.

    Stores raw observations up to :data:`_HISTOGRAM_CAP`; beyond that it
    deterministically decimates (keeps every other stored sample and
    doubles the sampling stride), so memory stays bounded while the
    percentile estimate remains spread over the whole observation
    stream.  Not itself thread-safe — the owning registry serialises
    access under its lock.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_values", "_stride", "_pending")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._values: List[float] = []
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._values.append(value)
            if len(self._values) >= _HISTOGRAM_CAP:
                self._values = self._values[::2]
                self._stride *= 2

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the samples."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            count=self.count,
            total=self.total,
            minimum=self.minimum if self.count else 0.0,
            maximum=self.maximum if self.count else 0.0,
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
        )


class MetricsRegistry:
    """Thread-safe counters, stage timers, and latency histograms.

    Counters are always on (they record rare control-flow events whose
    bookkeeping cost is paid only when something already went wrong);
    stage totals and histograms collect only while enabled.  Every
    mutation happens **in place** under ``_lock`` — ``enable(reset=True)``
    and ``reset()`` clear the live dicts rather than rebinding them, so a
    worker thread mid-update can never write into a discarded dict (the
    PR 1 parallel-top-k lost-update bug).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._enabled = False
        self._totals: Dict[str, StageTotal] = {}
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Per-thread active-stage depth frames: {stage name: depth}.
        # Only the outermost frame of a name is credited, so nested
        # same-name stage() blocks no longer double-count wall-clock.
        self._stage_tls = threading.local()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        """Start collecting stage timings (optionally clearing old data)."""
        with self._lock:
            if reset:
                self._clear_locked()
            self._enabled = True

    def disable(self) -> None:
        """Stop collecting; accumulated data stays readable."""
        self._enabled = False

    def is_enabled(self) -> bool:
        return self._enabled

    def reset(self) -> None:
        """Clear all totals, counters and histograms (in place, locked)."""
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._totals.clear()
        self._counters.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit time to a stage directly (thread-safe)."""
        with self._lock:
            total = self._totals.get(name)
            if total is None:
                total = self._totals[name] = StageTotal()
            total.seconds += seconds
            total.calls += calls

    def count(self, name: str, n: int = 1) -> None:
        """Bump an event counter (thread-safe, always on).

        The delta is also attached to the innermost active trace span of
        the calling thread, so per-span counter deltas come for free at
        every existing ``instrument.count`` site.
        """
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        bump(name, n)

    def observe(self, name: str, value: float) -> None:
        """Record one latency sample (collected only while enabled)."""
        if not self._enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, StageTotal]:
        """Snapshot of the per-stage totals (copies, safe to mutate)."""
        with self._lock:
            return {
                name: StageTotal(total.seconds, total.calls)
                for name, total in self._totals.items()
            }

    def counters(self) -> Dict[str, int]:
        """Snapshot of the event counters (a copy, safe to mutate)."""
        with self._lock:
            return dict(self._counters)

    def histograms(self) -> Dict[str, HistogramSummary]:
        """Snapshot of every latency histogram's percentile summary."""
        with self._lock:
            return {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            }

    def snapshot(self) -> Dict[str, Any]:
        """One coherent snapshot of stages + counters + histograms.

        Taken under a single lock acquisition, so the three views are
        mutually consistent even while worker threads keep writing.
        """
        with self._lock:
            return self._snapshot_locked()

    def drain(self) -> Dict[str, Any]:
        """Atomically snapshot *and clear* everything.

        The snapshot and the clear happen under one lock acquisition:
        every concurrent update lands either wholly before the drain
        (visible in the returned snapshot) or wholly after it (visible
        in the next one) — never lost.  This is the conservation
        property the reset-race regression suite hammers.
        """
        with self._lock:
            snapshot = self._snapshot_locked()
            self._clear_locked()
            return snapshot

    def _snapshot_locked(self) -> Dict[str, Any]:
        return {
            "stages": {
                name: StageTotal(total.seconds, total.calls)
                for name, total in self._totals.items()
            },
            "counters": dict(self._counters),
            "histograms": {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            },
        }

    # ------------------------------------------------------------------
    # stage timing
    # ------------------------------------------------------------------
    def _enter_frame(self, name: str) -> bool:
        """Push one per-thread frame for ``name``; True when outermost."""
        frames = self._stage_tls.__dict__.setdefault("frames", {})
        depth = frames.get(name, 0)
        frames[name] = depth + 1
        return depth == 0

    def _exit_frame(self, name: str, outermost: bool, seconds: float) -> None:
        """Pop one frame; credit the stage only for the outermost frame
        and only if collection is still enabled at exit."""
        frames = self._stage_tls.__dict__.setdefault("frames", {})
        depth = frames.get(name, 1) - 1
        if depth <= 0:
            frames.pop(name, None)
        else:
            frames[name] = depth
        if outermost and self._enabled:
            self.add(name, seconds)
            self.observe(name, seconds)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block against ``name`` when collection is on.

        Semantics:

        * Nested same-name stages count once — only the outermost frame
          of a name (per thread) is credited, so wrapping a helper that
          is also wrapped by its caller cannot double-count wall-clock.
        * A block is credited only when collection is enabled at **both**
          entry and exit: ``disable()`` mid-block drops the in-flight
          block (its timing would be torn across the toggle), and
          ``enable()`` mid-block takes effect at the next stage entry.
        * When disabled the overhead is one attribute read.

        Every credited block also feeds the stage's latency histogram.
        """
        if not self._enabled:
            yield
            return
        outermost = self._enter_frame(name)
        started = time.perf_counter() if outermost else 0.0
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started if outermost else 0.0
            self._exit_frame(name, outermost, elapsed)


#: The process-wide registry behind the :mod:`repro.core.instrument`
#: compatibility facade.
METRICS = MetricsRegistry()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
@dataclass
class SpanEvent:
    """A point-in-time annotation attached to a span (fallback engaged,
    breaker opened, snapshot quarantined, ...)."""

    name: str
    detail: str = ""
    #: Seconds since the recorder's epoch — a global ordering key.
    at: float = 0.0


class Span:
    """One timed node of a query's trace tree.

    ``seconds`` is wall-clock of the span body; ``counters`` holds the
    event-counter deltas emitted while this span was the innermost one on
    its thread; ``events`` the point annotations.  Aggregations
    (:meth:`total_counters`, :meth:`stage_totals`) roll up the subtree.
    """

    __slots__ = (
        "kind",
        "name",
        "attrs",
        "start",
        "seconds",
        "counters",
        "events",
        "children",
        "thread",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        start: float = 0.0,
        thread: int = 0,
    ):
        self.kind = kind
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.start = start
        self.seconds = 0.0
        self.counters: Dict[str, int] = {}
        self.events: List[SpanEvent] = []
        self.children: List["Span"] = []
        self.thread = thread

    # -- aggregation -----------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_counters(self) -> Dict[str, int]:
        """Counter deltas summed over the whole subtree."""
        totals: Dict[str, int] = {}
        for node in self.walk():
            for name, value in node.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def all_events(self) -> List[Tuple["Span", SpanEvent]]:
        """Every event of the subtree with its owning span, in time order."""
        found = [
            (node, event) for node in self.walk() for event in node.events
        ]
        found.sort(key=lambda pair: pair[1].at)
        return found

    def stage_totals(self) -> Dict[str, StageTotal]:
        """Per-stage rollup of the subtree's leaf span durations.

        Only kinds in :data:`KIND_TO_STAGE` contribute — container spans
        overlap their children and would double-count.  Because
        :func:`staged_span` feeds the legacy stage timers from the same
        ``perf_counter`` pair, this rollup reconciles with
        ``instrument.totals()`` for a traced, metrics-enabled run.
        """
        totals: Dict[str, StageTotal] = {}
        for node in self.walk():
            stage = KIND_TO_STAGE.get(node.kind)
            if stage is None:
                continue
            total = totals.setdefault(stage, StageTotal())
            total.seconds += node.seconds
            total.calls += 1
        return totals

    # -- export ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of the subtree (for ``BENCH_*.json`` export)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "thread": self.thread,
            "attrs": {key: _json_safe(value) for key, value in self.attrs.items()},
            "counters": dict(self.counters),
            "events": [
                {"name": event.name, "detail": event.detail, "at": event.at}
                for event in self.events
            ],
            "children": [
                child.to_dict()
                for child in sorted(self.children, key=lambda s: s.start)
            ],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.kind}:{self.name!r}, {self.seconds * 1000:.2f}ms, "
            f"{len(self.children)} children)"
        )


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class TraceRecorder:
    """Thread-safe collector of span trees for one or more queries.

    Spans attach to their parent at close; the parent is whatever span
    was innermost on the opening thread, so the tree mirrors the dynamic
    call structure.  Worker threads of a fan-out join the submitting
    thread's tree via :func:`capture`/:func:`adopt`.  All cross-thread
    mutation (child attachment, events, counter deltas on shared parent
    spans) is serialised on one lock.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        #: Completed top-level spans, in completion order.
        self.roots: List[Span] = []
        #: Events emitted with no span open (rare; kept, not dropped).
        self.orphan_events: List[SpanEvent] = []

    def elapsed(self) -> float:
        """Seconds since the recorder's epoch."""
        return self._clock() - self._epoch

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of this thread's innermost span.

        The span object is yielded so callers can set attributes while
        the body runs; duration and tree attachment happen at exit, even
        when the body raises (the error's type is recorded in
        ``attrs["error"]``).
        """
        parent = getattr(_tls, "span", None)
        previous_recorder = getattr(_tls, "recorder", None)
        opened = Span(
            kind,
            name,
            attrs=attrs,
            start=self.elapsed(),
            thread=threading.get_ident(),
        )
        _tls.recorder = self
        _tls.span = opened
        started = self._clock()
        try:
            yield opened
        except BaseException as exc:
            opened.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            opened.seconds = self._clock() - started
            _tls.span = parent
            _tls.recorder = previous_recorder
            with self._lock:
                if parent is not None:
                    parent.children.append(opened)
                else:
                    self.roots.append(opened)

    def event(self, name: str, detail: str = "") -> SpanEvent:
        """Attach a point event to this thread's innermost span."""
        emitted = SpanEvent(name, detail, at=self.elapsed())
        target = getattr(_tls, "span", None)
        with self._lock:
            if target is not None:
                target.events.append(emitted)
            else:
                self.orphan_events.append(emitted)
        return emitted


# ---------------------------------------------------------------------------
# thread-local activation
# ---------------------------------------------------------------------------
_tls = threading.local()


def current() -> Optional[TraceRecorder]:
    """The recorder active on this thread (None = tracing off).

    This is the one-attribute-read check every span site performs on the
    disabled path.
    """
    return getattr(_tls, "recorder", None)


def current_span() -> Optional[Span]:
    """This thread's innermost open span, if any."""
    return getattr(_tls, "span", None)


@contextmanager
def recording(
    recorder: Optional[TraceRecorder] = None,
) -> Iterator[TraceRecorder]:
    """Install a recorder (a fresh one by default) on this thread."""
    active = recorder if recorder is not None else TraceRecorder()
    previous_recorder = getattr(_tls, "recorder", None)
    previous_span = getattr(_tls, "span", None)
    _tls.recorder = active
    _tls.span = None
    try:
        yield active
    finally:
        _tls.recorder = previous_recorder
        _tls.span = previous_span


class TraceToken(NamedTuple):
    """A portable handle to one thread's trace position (see :func:`adopt`)."""

    recorder: Optional[TraceRecorder]
    span: Optional[Span]


def capture() -> TraceToken:
    """Capture this thread's recorder and innermost span for a worker."""
    return TraceToken(
        getattr(_tls, "recorder", None), getattr(_tls, "span", None)
    )


@contextmanager
def adopt(token: TraceToken) -> Iterator[None]:
    """Install a captured trace position on this (worker) thread.

    Spans the worker opens become children of the captured span, so a
    thread-pool fan-out keeps correct parentage.  A token captured with
    no recorder active makes this a no-op.
    """
    if token.recorder is None:
        yield
        return
    previous_recorder = getattr(_tls, "recorder", None)
    previous_span = getattr(_tls, "span", None)
    _tls.recorder = token.recorder
    _tls.span = token.span
    try:
        yield
    finally:
        _tls.recorder = previous_recorder
        _tls.span = previous_span


# ---------------------------------------------------------------------------
# module-level emission helpers (fast no-ops when tracing is off)
# ---------------------------------------------------------------------------
class _NullContext:
    """A reusable, re-entrant do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL = _NullContext()


def span(kind: str, name: str, **attrs: Any):
    """A span context when tracing is on, a shared no-op otherwise."""
    recorder = getattr(_tls, "recorder", None)
    if recorder is None:
        return _NULL
    return recorder.span(kind, name, **attrs)


@contextmanager
def staged_span(
    stage_name: str, kind: str, name: str, **attrs: Any
) -> Iterator[Optional[Span]]:
    """Time a region once, crediting both the stage totals and a span.

    With no recorder installed this is exactly ``METRICS.stage(...)``
    (and a plain pass-through when metrics are disabled too).  With a
    recorder, the span's ``perf_counter`` pair is the *only* measurement:
    its duration is credited to the legacy stage under the same
    outermost-frame and enabled-at-entry-and-exit rules as
    :meth:`MetricsRegistry.stage` — which is why a trace's per-stage
    rollup reconciles exactly with ``instrument.totals()``.
    """
    recorder = getattr(_tls, "recorder", None)
    if recorder is None:
        if not METRICS._enabled:
            yield None
            return
        with METRICS.stage(stage_name):
            yield None
        return
    entered = METRICS._enabled
    outermost = METRICS._enter_frame(stage_name) if entered else False
    opened: Optional[Span] = None
    try:
        with recorder.span(kind, name, **attrs) as opened:
            yield opened
    finally:
        if entered:
            seconds = opened.seconds if opened is not None else 0.0
            METRICS._exit_frame(stage_name, outermost, seconds)


def event(name: str, detail: str = "") -> Optional[SpanEvent]:
    """Emit a point event onto the current span (no-op when tracing off)."""
    recorder = getattr(_tls, "recorder", None)
    if recorder is None:
        return None
    return recorder.event(name, detail)


def bump(name: str, n: int = 1) -> None:
    """Attach a counter delta to the current span (no-op when tracing off)."""
    opened = getattr(_tls, "span", None)
    if opened is None:
        return
    recorder = _tls.recorder
    with recorder._lock:
        opened.counters[name] = opened.counters.get(name, 0) + n


def annotate(**attrs: Any) -> None:
    """Set attributes on the current span (no-op when tracing off)."""
    opened = getattr(_tls, "span", None)
    if opened is None:
        return
    recorder = _tls.recorder
    with recorder._lock:
        opened.attrs.update(attrs)


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
def stage_breakdown(root: Span) -> Dict[str, StageTotal]:
    """Per-stage totals of one span tree (see :meth:`Span.stage_totals`)."""
    return root.stage_totals()


def _format_attrs(node: Span) -> str:
    parts = [f"{key}={_json_safe(value)}" for key, value in node.attrs.items()]
    parts.extend(f"{key}+{value}" for key, value in node.counters.items())
    return f"  [{', '.join(parts)}]" if parts else ""


def render_text(root: Span, indent: int = 0) -> str:
    """The span tree as an indented text profile (the CLI ``trace`` view)."""
    pad = "  " * indent
    lines = [
        f"{pad}{root.name}  ({root.kind})  "
        f"{root.seconds * 1000:.2f} ms{_format_attrs(root)}"
    ]
    for emitted in root.events:
        detail = f"  {emitted.detail}" if emitted.detail else ""
        lines.append(
            f"{pad}  ! {emitted.name} @ {emitted.at * 1000:.1f} ms{detail}"
        )
    for child in sorted(root.children, key=lambda node: node.start):
        lines.append(render_text(child, indent + 1))
    return "\n".join(lines)
