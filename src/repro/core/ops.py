"""Similarity-list algorithms for type (1) formulas (paper §3.1).

Every operator consumes and produces :class:`~repro.core.simlist.SimilarityList`
values in interval-compressed form; nothing here ever expands a list into
per-segment rows, which is exactly the property that makes the direct method
beat the SQL baseline in the paper's §4.2 experiments.

Complexities match the paper's analysis:

* :func:`and_lists` — ``O(len(L1) + len(L2))`` on sorted lists (lists are
  kept sorted by construction; :func:`sorted_entries` re-sorts defensively).
* :func:`next_list` — ``O(len(L))``.
* :func:`until_lists` — ``O(len(L1) + len(L2))`` plus the bisections used to
  locate each run's candidate window.
* :func:`max_merge_lists` — ``O(l log m)`` for ``m`` lists of total length
  ``l`` (the "modified m-way merge" of §3.2).
"""

from __future__ import annotations

import bisect
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import resilience
from repro.core.intervals import Interval, coalesce
from repro.core.simlist import SIM_EPS, SimEntry, SimilarityList
from repro.errors import SimilarityListInvariantError

#: Default minimum fractional similarity the left operand of ``until`` must
#: keep while waiting for the right operand (paper §2.5: "g is satisfied
#: with a minimum threshold value").
DEFAULT_UNTIL_THRESHOLD = 0.5


# ---------------------------------------------------------------------------
# conjunction
# ---------------------------------------------------------------------------
def and_lists(left: SimilarityList, right: SimilarityList) -> SimilarityList:
    """Similarity list of ``f = g ∧ h`` from the lists of ``g`` and ``h``.

    Per §2.5 the combined value at a segment is ``(a1+a2, m1+m2)``; a segment
    on only one input list keeps its single value ("even if one of a1 and a2
    is zero ... we still may consider f to be partially satisfied").  The
    modified merge walks both sorted entry arrays once.
    """
    budget = resilience.current_budget()
    if budget is not None:
        budget.charge(len(left) + len(right) + 1, site="list-merge")
    resilience.fault(resilience.SITE_LIST_MERGE)
    maximum = left.maximum + right.maximum
    boundaries = _critical_points(left, right)
    pieces: List[Tuple[Tuple[int, int], float]] = []
    left_index = 0
    right_index = 0
    for start, stop in zip(boundaries, boundaries[1:]):
        # values are constant on [start, stop - 1]
        left_value, left_index = _constant_value_at(left, start, left_index)
        right_value, right_index = _constant_value_at(right, start, right_index)
        total = left_value + right_value
        if total > SIM_EPS:
            pieces.append(((start, stop - 1), total))
    return resilience.fault_value(
        resilience.SITE_LIST_MERGE,
        SimilarityList.from_entries(pieces, maximum),
    )


def _critical_points(
    left: SimilarityList, right: SimilarityList
) -> List[int]:
    """Sorted distinct positions where either input list may change value.

    Each list's boundary stream ``begin_1, end_1+1, begin_2, end_2+1, …``
    is already non-decreasing (entries are sorted with disjoint intervals,
    so ``begin_{i+1} >= end_i + 1``), so a two-pointer merge with
    duplicate suppression yields the sorted union in
    ``O(len(left) + len(right))`` — no set, no sort.
    """
    left_stream = _boundary_stream(left)
    right_stream = _boundary_stream(right)
    points: List[int] = []
    i = 0
    j = 0
    left_len = len(left_stream)
    right_len = len(right_stream)
    while i < left_len or j < right_len:
        if j >= right_len or (i < left_len and left_stream[i] <= right_stream[j]):
            value = left_stream[i]
            i += 1
        else:
            value = right_stream[j]
            j += 1
        if not points or points[-1] != value:
            points.append(value)
    return points


def _boundary_stream(sim_list: SimilarityList) -> List[int]:
    """The non-decreasing ``begin, end+1`` stream of one list's entries."""
    stream: List[int] = []
    for entry in sim_list:
        if not stream or stream[-1] != entry.begin:
            stream.append(entry.begin)
        stream.append(entry.end + 1)
    return stream


def _constant_value_at(
    sim_list: SimilarityList, position: int, hint: int
) -> Tuple[float, int]:
    """Value of the list at ``position`` using a monotone cursor ``hint``.

    Callers must probe with non-decreasing positions; the cursor then never
    moves backwards, giving an overall linear walk.
    """
    entries = sim_list.entries
    index = hint
    while index < len(entries) and entries[index].end < position:
        index += 1
    if index < len(entries) and entries[index].begin <= position:
        return entries[index].actual, index
    return 0.0, index


# ---------------------------------------------------------------------------
# next
# ---------------------------------------------------------------------------
def next_list(operand: SimilarityList) -> SimilarityList:
    """Similarity list of ``next g``: shift every interval left by one.

    A segment with no successor gets actual value 0 (not stored); an
    interval that would start at id 0 is clamped to the 1-based axis.
    """
    shifted: List[SimEntry] = []
    for entry in operand:
        interval = entry.interval.shift(-1)
        if interval is not None:
            shifted.append(SimEntry(interval, entry.actual))
    return SimilarityList.from_raw(shifted, operand.maximum)


# ---------------------------------------------------------------------------
# until / eventually
# ---------------------------------------------------------------------------
def threshold_runs(
    operand: SimilarityList, threshold: float
) -> List[Interval]:
    """L1 pre-processing of the UNTIL algorithm.

    Drop entries whose fractional similarity is below ``threshold`` and
    coalesce adjacent survivors into maximal runs; actual values are
    discarded ("their values are not used any more").
    """
    kept = [
        entry.interval
        for entry in operand
        if entry.actual / operand.maximum + SIM_EPS >= threshold
    ]
    return coalesce(kept)


def until_runs(
    runs: Sequence[Interval], right: SimilarityList
) -> SimilarityList:
    """Core UNTIL combination of thresholded runs with the ``h`` list.

    The value at a segment ``u`` inside a run ``I`` is the maximum actual
    value of the ``h`` entries reachable from ``u``: those starting no later
    than ``end(I) + 1`` and ending at or after ``u`` (``g`` must hold on
    ``[u, u″)``, so ``u″`` may be one past the run).  A segment outside all
    runs only reaches itself, hence takes the ``h`` value at that segment.

    This follows the paper's backward-merge algorithm, with the
    ``end(I) + 1`` boundary fix documented in DESIGN.md §2.
    """
    begins = [entry.begin for entry in right.entries]
    ends = [entry.end for entry in right.entries]
    pieces: List[Tuple[Tuple[int, int], float]] = []

    for run in runs:
        # Candidate window: h entries with end >= run.begin (suffix, since
        # disjoint sorted intervals have increasing ends) and
        # begin <= run.end + 1 (prefix).
        low = bisect.bisect_left(ends, run.begin)
        high = bisect.bisect_right(begins, run.end + 1)
        if low >= high:
            continue
        candidates = right.entries[low:high]
        # Build the non-increasing step function
        #   value(u) = max{actual(J) : end(J) >= u}
        # over u in [run.begin, run.end] by scanning candidates from the
        # largest end downwards while keeping a running maximum.
        running_max = 0.0
        upper = run.end
        for entry in reversed(candidates):
            if entry.actual > running_max:
                if entry.end < upper:
                    if running_max > SIM_EPS:
                        pieces.append(
                            ((max(entry.end + 1, run.begin), upper), running_max)
                        )
                    upper = min(entry.end, run.end)
                running_max = entry.actual
            if upper < run.begin:
                break
        if running_max > SIM_EPS and upper >= run.begin:
            pieces.append(((run.begin, upper), running_max))

    # Segments covered by h but outside every run take the direct h value.
    pieces.extend(_outside_run_pieces(runs, right))
    return SimilarityList.from_entries(pieces, right.maximum)


def _outside_run_pieces(
    runs: Sequence[Interval], right: SimilarityList
) -> List[Tuple[Tuple[int, int], float]]:
    """Portions of each ``h`` entry not covered by any run."""
    pieces: List[Tuple[Tuple[int, int], float]] = []
    run_index = 0
    for entry in right:
        cursor = entry.begin
        while cursor <= entry.end:
            while run_index < len(runs) and runs[run_index].end < cursor:
                run_index += 1
            if run_index < len(runs) and runs[run_index].begin <= cursor:
                cursor = runs[run_index].end + 1
                continue
            if run_index < len(runs):
                gap_end = min(entry.end, runs[run_index].begin - 1)
            else:
                gap_end = entry.end
            pieces.append(((cursor, gap_end), entry.actual))
            cursor = gap_end + 1
        # The run cursor never needs to rewind: entries and runs are both
        # sorted and disjoint, so probe positions are non-decreasing.
    return pieces


def until_lists(
    left: SimilarityList,
    right: SimilarityList,
    threshold: float = DEFAULT_UNTIL_THRESHOLD,
) -> SimilarityList:
    """Similarity list of ``f = g until h`` (threshold + backward merge).

    The threshold must be strictly positive: at 0 every segment — even one
    with no similarity to ``g`` at all — would count as satisfying ``g``,
    degenerating ``until`` into ``eventually``; a "minimum threshold value"
    (paper §2.5) is inherently positive.
    """
    if threshold <= SIM_EPS:
        raise SimilarityListInvariantError(
            f"the until threshold must be strictly positive, got {threshold}"
        )
    budget = resilience.current_budget()
    if budget is not None:
        budget.charge(len(left) + len(right) + 1, site="list-merge")
    resilience.fault(resilience.SITE_LIST_MERGE)
    runs = threshold_runs(left, threshold)
    return until_runs(runs, right)


def eventually_list(operand: SimilarityList) -> SimilarityList:
    """Similarity list of ``eventually g``: the suffix-maximum step function.

    Equivalent to ``true until g`` with the left list covering the whole
    axis; implemented directly in one backward scan.
    """
    pieces: List[Tuple[Tuple[int, int], float]] = []
    running_max = 0.0
    upper = 0
    for entry in reversed(operand.entries):
        if entry.actual > running_max:
            if running_max > SIM_EPS and entry.end + 1 <= upper:
                pieces.append(((entry.end + 1, upper), running_max))
            running_max = entry.actual
            upper = entry.end
    if running_max > SIM_EPS:
        pieces.append(((1, upper), running_max))
    return SimilarityList.from_entries(pieces, operand.maximum)


# ---------------------------------------------------------------------------
# m-way maximum merge (for ∃-elimination over table rows, §3.2 part 2)
# ---------------------------------------------------------------------------
def max_merge_lists(lists: Sequence[SimilarityList]) -> SimilarityList:
    """Pointwise maximum of several lists sharing one ``max_sim``.

    The "modified m-way merge": a sweep over interval starts/ends keeping
    the active actual values in a lazy-deletion max-heap, emitting a piece
    per elementary interval.  ``O(l log m)`` for total length ``l``.
    """
    if not lists:
        raise SimilarityListInvariantError("max_merge_lists needs >= 1 list")
    maximum = lists[0].maximum
    for sim_list in lists[1:]:
        if abs(sim_list.maximum - maximum) > SIM_EPS:
            raise SimilarityListInvariantError(
                "lists merged by maximum must share max_sim: "
                f"{sim_list.maximum} vs {maximum}"
            )
    if len(lists) == 1:
        return lists[0]
    budget = resilience.current_budget()
    if budget is not None:
        budget.charge(
            sum(len(sim_list) for sim_list in lists), site="list-merge"
        )

    # Events: (position, kind, actual); kind 0 = start, 1 = end-after.
    events: List[Tuple[int, int, float]] = []
    for sim_list in lists:
        for entry in sim_list:
            events.append((entry.begin, 0, entry.actual))
            events.append((entry.end + 1, 1, entry.actual))
    events.sort(key=lambda event: (event[0], event[1]))

    heap: List[float] = []  # negated actuals
    expired: Dict[float, int] = {}
    pieces: List[Tuple[Tuple[int, int], float]] = []
    index = 0
    previous_position: Optional[int] = None
    previous_value = 0.0
    while index < len(events):
        position = events[index][0]
        if previous_position is not None and previous_value > SIM_EPS:
            pieces.append(((previous_position, position - 1), previous_value))
        while index < len(events) and events[index][0] == position:
            __, kind, actual = events[index]
            if kind == 0:
                heapq.heappush(heap, -actual)
            else:
                expired[actual] = expired.get(actual, 0) + 1
            index += 1
        previous_value = _heap_max(heap, expired)
        previous_position = position
    return SimilarityList.from_entries(pieces, maximum)


def _heap_max(heap: List[float], expired: Dict[float, int]) -> float:
    """Current maximum of the lazy-deletion heap (0 when empty)."""
    while heap:
        candidate = -heap[0]
        pending = expired.get(candidate, 0)
        if pending:
            heapq.heappop(heap)
            if pending == 1:
                del expired[candidate]
            else:
                expired[candidate] = pending - 1
        else:
            return candidate
    return 0.0


# ---------------------------------------------------------------------------
# always (documented extension, paper §5 future work)
# ---------------------------------------------------------------------------
def always_list(operand: SimilarityList, axis_end: int) -> SimilarityList:
    """Similarity list of ``always g`` — *extension*, not in the paper.

    We adopt the natural dual of ``eventually``: the value at ``u`` is the
    minimum actual value of ``g`` over the suffix ``[u, axis_end]`` (zero as
    soon as any suffix segment is off-list).  Needs the axis length because
    absent segments carry value 0.
    """
    entries = operand.entries
    if axis_end < 1 or not entries:
        return SimilarityList.empty(operand.maximum)
    # Positive exactly where [u, axis_end] lies inside one trailing block of
    # contiguous entries; the value at u is the running minimum of the
    # actual values encountered while scanning that block backwards.
    pieces: List[Tuple[Tuple[int, int], float]] = []
    running_min: Optional[float] = None
    next_begin = 0  # begin of the previously processed (later) entry
    for entry in reversed(entries):
        if entry.begin > axis_end:
            continue  # entirely beyond the axis; irrelevant
        clipped_end = min(entry.end, axis_end)
        if running_min is None:
            if clipped_end != axis_end:
                break  # the suffix is not covered at axis_end: all zero
            running_min = entry.actual
        else:
            if clipped_end + 1 != next_begin:
                break  # gap in coverage: earlier segments all score zero
            running_min = min(running_min, entry.actual)
        if running_min > SIM_EPS:
            pieces.append(((entry.begin, clipped_end), running_min))
        next_begin = entry.begin
    pieces.reverse()
    return SimilarityList.from_entries(pieces, operand.maximum)
