"""Value ranges for attribute variables (paper §3.3).

HTL restricts predicates over an attribute variable ``y`` to the forms
``y OP q`` with ``OP ∈ {<, <=, >, >=, =}`` for integer ``q`` and to
``y = q`` otherwise, so the satisfying values of a conjunction of such
predicates always form a *range*; similarity-table columns for attribute
variables therefore hold ranges rather than single values.

A :class:`Range` is one of three kinds:

* an **interval** ``[low, high]`` of integers, possibly unbounded on either
  side (integers are the paper's ranged type);
* an **exact** value of any type (the only predicate form for non-integer
  values is equality);
* a **complement** — every value except a finite excluded set; this is how
  "any string not mentioned by the query" is represented, and
  :data:`FULL` (no exclusions) is the unconstrained range.

The algebra (intersection, difference) is closed under the combinations
that arise when each attribute variable is used with one consistent value
type — the discipline the retrieval layer enforces per atom.  Genuinely
mixed combinations (an integer interval against a complement excluding
integers inside it, ...) raise :class:`HTLTypeError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Union

from repro.errors import HTLTypeError

RangeValue = Union[str, int, float]


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


@dataclass(frozen=True)
class Range:
    """One range of attribute-variable values (see module docstring).

    Exactly one kind is active: ``exact`` set → exact; ``is_interval`` set →
    integer interval ``[low, high]``; otherwise complement of ``excluded``.
    The default construction ``Range()`` is :data:`FULL`.
    """

    low: Optional[int] = None
    high: Optional[int] = None
    exact: object = None
    is_interval: bool = False
    excluded: FrozenSet[RangeValue] = frozenset()

    def __post_init__(self) -> None:
        if self.exact is not None:
            if self.low is not None or self.high is not None or self.excluded:
                raise HTLTypeError("exact ranges carry no bounds/exclusions")
            return
        if self.low is not None or self.high is not None or self.is_interval:
            object.__setattr__(self, "is_interval", True)
            if self.excluded:
                raise HTLTypeError("interval ranges carry no exclusions")
            for bound in (self.low, self.high):
                if bound is not None and not _is_int(bound):
                    raise HTLTypeError(
                        "the paper restricts ranged attribute variables to "
                        f"integers; got bound {bound!r}"
                    )
            if (
                self.low is not None
                and self.high is not None
                and self.low > self.high
            ):
                raise HTLTypeError(f"empty range [{self.low}, {self.high}]")

    # -- kind predicates ------------------------------------------------------
    def is_exact(self) -> bool:
        return self.exact is not None

    def is_complement(self) -> bool:
        return self.exact is None and not self.is_interval

    def is_full(self) -> bool:
        return self.is_complement() and not self.excluded

    # -- membership -------------------------------------------------------------
    def contains(self, value: RangeValue) -> bool:
        if self.exact is not None:
            return value == self.exact
        if self.is_interval:
            if not _is_int(value):
                return False
            if self.low is not None and value < self.low:
                return False
            if self.high is not None and value > self.high:
                return False
            return True
        return value not in self.excluded

    # -- algebra --------------------------------------------------------------
    def intersect(self, other: "Range") -> Optional["Range"]:
        """The common sub-range, or None when empty."""
        if self.exact is not None:
            return self if other.contains(self.exact) else None  # type: ignore[arg-type]
        if other.exact is not None:
            return other if self.contains(other.exact) else None  # type: ignore[arg-type]
        if self.is_interval and other.is_interval:
            low = _max_bound(self.low, other.low)
            high = _min_bound(self.high, other.high)
            if low is not None and high is not None and low > high:
                return None
            return Range(low, high, is_interval=True)
        if self.is_interval or other.is_interval:
            interval = self if self.is_interval else other
            complement = other if self.is_interval else self
            conflicting = [
                value
                for value in complement.excluded
                if _is_int(value) and interval.contains(value)
            ]
            if conflicting:
                raise HTLTypeError(
                    "intersecting an integer interval with a complement "
                    f"excluding integers {conflicting}: an attribute "
                    "variable is being used with mixed value types"
                )
            return interval
        return Range(excluded=self.excluded | other.excluded)

    def difference(self, other: "Range") -> List["Range"]:
        """``self`` minus ``other`` as disjoint ranges."""
        if self.intersect(other) is None:
            return [self]
        if self.exact is not None:
            # Intersecting means the exact value lies in `other`.
            return []
        if self.is_interval:
            return self._interval_difference(other)
        return self._complement_difference(other)

    def _interval_difference(self, other: "Range") -> List["Range"]:
        if other.exact is not None:
            if not _is_int(other.exact):
                return [self]
            other = Range(other.exact, other.exact, is_interval=True)
        if other.is_interval:
            pieces: List[Range] = []
            if other.low is not None and (
                self.low is None or self.low < other.low
            ):
                pieces.append(Range(self.low, other.low - 1, is_interval=True))
            if other.high is not None and (
                self.high is None or self.high > other.high
            ):
                pieces.append(Range(other.high + 1, self.high, is_interval=True))
            return pieces
        # interval minus complement = the excluded integers inside.
        return [
            Range(value, value, is_interval=True)
            for value in sorted(v for v in other.excluded if _is_int(v))
            if self.contains(value)
        ]

    def _complement_difference(self, other: "Range") -> List["Range"]:
        if other.exact is not None:
            return [Range(excluded=self.excluded | {other.exact})]  # type: ignore[arg-type]
        if other.is_complement():
            return [
                Range(exact=value)
                for value in sorted(other.excluded - self.excluded, key=repr)
            ]
        # ``other`` is an integer interval: under the one-type-per-variable
        # discipline the variable is integer-typed here, so the complement
        # acts as the integer axis minus its excluded integers; the
        # difference is the flanking intervals, themselves punctured at
        # any excluded integers they contain.
        axis = Range(None, None, is_interval=True)
        pieces = axis.difference(other)
        for value in sorted(
            (v for v in self.excluded if _is_int(v)),
            key=lambda v: (v is None, v),
        ):
            pieces = [
                part
                for piece in pieces
                for part in piece.difference(Range(exact=value))
            ]
        return pieces

    # -- representatives --------------------------------------------------------
    def sample(self) -> RangeValue:
        """A representative member of the range."""
        if self.exact is not None:
            return self.exact  # type: ignore[return-value]
        if self.is_interval:
            if self.low is not None:
                return self.low
            if self.high is not None:
                return self.high
            return 0
        candidate = "other"
        suffix = 0
        while candidate in self.excluded:
            suffix += 1
            candidate = f"other_{suffix}"
        return candidate

    def __repr__(self) -> str:
        if self.exact is not None:
            return f"Range(={self.exact!r})"
        if self.is_interval:
            low = "-inf" if self.low is None else str(self.low)
            high = "+inf" if self.high is None else str(self.high)
            return f"Range([{low}, {high}])"
        if not self.excluded:
            return "Range(FULL)"
        return f"Range(not in {sorted(self.excluded, key=repr)!r})"


def _max_bound(left: Optional[int], right: Optional[int]) -> Optional[int]:
    if left is None:
        return right
    if right is None:
        return left
    return max(left, right)


def _min_bound(left: Optional[int], right: Optional[int]) -> Optional[int]:
    if left is None:
        return right
    if right is None:
        return left
    return min(left, right)


#: The unconstrained range (complement of nothing).
FULL = Range()


def interval(low: Optional[int], high: Optional[int]) -> Range:
    """Shorthand integer-interval constructor."""
    return Range(low, high, is_interval=True)


def from_comparison(op: str, bound: RangeValue) -> Range:
    """The range of ``y`` values satisfying ``y OP bound``.

    Mirrors the paper's restriction: the five ordered forms for integer
    bounds, equality only otherwise.
    """
    if not _is_int(bound):
        if op == "=":
            return Range(exact=bound)
        raise HTLTypeError(
            f"attribute-variable predicate y {op} {bound!r}: non-integer "
            "bounds are restricted to equality (paper §3.3)"
        )
    if op == "=":
        return interval(bound, bound)
    if op == "<":
        return interval(None, bound - 1)
    if op == "<=":
        return interval(None, bound)
    if op == ">":
        return interval(bound + 1, None)
    if op == ">=":
        return interval(bound, None)
    raise HTLTypeError(f"unsupported attribute-variable comparison {op!r}")


def flipped(op: str) -> str:
    """Mirror a comparison so the attribute variable sits on the left."""
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
