"""Formula rewriting for faster retrieval (query optimisation).

The paper's complexity analysis makes the cost of the direct method a
function of the formula's length and the lengths of the intermediate
similarity lists; rewriting the formula before evaluation shrinks both.
All rules preserve the similarity semantics exactly — each is backed by an
algebraic law property-tested in ``tests/core/test_ops_laws.py`` or by the
engine-vs-oracle equivalence suite:

* ``eventually (eventually f)  →  eventually f``        (idempotence)
* ``next f ∧ next g            →  next (f ∧ g)``         (distribution)
* ``eventually (next f)        →  next (eventually f)``  (commutation; the
  right side shifts one shorter intermediate list)
* ``true ∧ f`` stays put — ∧ with ``true`` *changes* the similarity value
  (it adds 1 to both components), so it is **not** eliminated; a reminder
  that boolean simplifications are generally unsound under graded
  semantics.
* adjacent ``∃`` prefixes merge: ``∃x.∃y.f → ∃x,y.f``.
* conjunction reassociation orders conjuncts by the structural cost
  heuristic (number of free object variables, then temporal-operator
  count, then size), so joins start from the most selective tables — the
  classic join-ordering heuristic.

These are *static* rewrites: no video in sight, so only the formula's
structure can inform the ordering.  The statistics-driven ordering lives
in :mod:`repro.core.planner` (DESIGN.md §13), which the engine applies
per evaluation; this module's ordering is that planner's statistics-free
fallback (:func:`repro.core.planner.structural_cost` — the heuristic
moved there and is re-exported here for compatibility).

Use :func:`optimize` before :meth:`RetrievalEngine.evaluate_video` when
queries are machine-generated or deeply nested; hand-written queries are
usually already in good shape.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.planner import order_conjuncts, structural_cost
from repro.htl import ast
from repro.htl.classify import is_non_temporal


def optimize(formula: ast.Formula) -> ast.Formula:
    """Apply the rewrite rules bottom-up until a fixed point."""
    current = formula
    for __ in range(_MAX_PASSES):
        rewritten = _rewrite(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


_MAX_PASSES = 8


def _rewrite(formula: ast.Formula) -> ast.Formula:
    formula = _rewrite_children(formula)

    # eventually (eventually f) -> eventually f
    if isinstance(formula, ast.Eventually) and isinstance(
        formula.sub, ast.Eventually
    ):
        return formula.sub

    # always (always f) -> always f
    if isinstance(formula, ast.Always) and isinstance(formula.sub, ast.Always):
        return formula.sub

    # eventually (next f) -> next (eventually f)
    if isinstance(formula, ast.Eventually) and isinstance(
        formula.sub, ast.Next
    ):
        return ast.Next(ast.Eventually(formula.sub.sub))

    # next f ∧ next g -> next (f ∧ g)
    if (
        isinstance(formula, ast.And)
        and isinstance(formula.left, ast.Next)
        and isinstance(formula.right, ast.Next)
    ):
        return ast.Next(ast.And(formula.left.sub, formula.right.sub))

    # ∃x . ∃y . f -> ∃x,y . f (when names do not collide)
    if isinstance(formula, ast.Exists) and isinstance(formula.sub, ast.Exists):
        inner = formula.sub
        if not set(formula.vars) & set(inner.vars):
            return ast.Exists(formula.vars + inner.vars, inner.sub)

    # Reassociate conjunction chains cheapest-first.
    if isinstance(formula, ast.And):
        reordered = _reorder_conjunction(formula)
        if reordered is not None:
            return reordered

    return formula


def _rewrite_children(formula: ast.Formula) -> ast.Formula:
    if isinstance(formula, ast.And):
        return ast.And(_rewrite(formula.left), _rewrite(formula.right))
    if isinstance(formula, ast.Or):
        return ast.Or(_rewrite(formula.left), _rewrite(formula.right))
    if isinstance(formula, ast.Until):
        return ast.Until(_rewrite(formula.left), _rewrite(formula.right))
    if isinstance(formula, ast.Not):
        return ast.Not(_rewrite(formula.sub))
    if isinstance(formula, ast.Next):
        return ast.Next(_rewrite(formula.sub))
    if isinstance(formula, ast.Eventually):
        return ast.Eventually(_rewrite(formula.sub))
    if isinstance(formula, ast.Always):
        return ast.Always(_rewrite(formula.sub))
    if isinstance(formula, ast.Exists):
        return ast.Exists(formula.vars, _rewrite(formula.sub))
    if isinstance(formula, ast.Freeze):
        return ast.Freeze(formula.var, formula.func, _rewrite(formula.sub))
    if isinstance(formula, ast.Weighted):
        return ast.Weighted(formula.weight, _rewrite(formula.sub))
    if isinstance(formula, ast.AtNextLevel):
        return ast.AtNextLevel(_rewrite(formula.sub))
    if isinstance(formula, ast.AtLevel):
        return ast.AtLevel(formula.level, _rewrite(formula.sub))
    if isinstance(formula, ast.AtNamedLevel):
        return ast.AtNamedLevel(formula.level_name, _rewrite(formula.sub))
    return formula


def _conjunction_chain(formula: ast.Formula) -> List[ast.Formula]:
    """Flatten a left-leaning ∧ chain into its conjuncts.

    Only the temporal skeleton is flattened; non-temporal subformulas are
    atoms and stay intact (their internal ∧ is the picture system's job).
    """
    if isinstance(formula, ast.And) and not is_non_temporal(formula):
        return _conjunction_chain(formula.left) + _conjunction_chain(
            formula.right
        )
    return [formula]


def estimated_cost(conjunct: ast.Formula) -> Tuple[int, int, int]:
    """Deprecated alias of :func:`repro.core.planner.structural_cost`.

    The heuristic moved into the planner module, where it serves as the
    statistics-free fallback ranking; this name is kept so existing
    callers (and tests) keep working.  New code should import
    ``structural_cost`` from :mod:`repro.core.planner`.
    """
    return structural_cost(conjunct)


def _reorder_conjunction(formula: ast.And):
    """Rebuild an ∧ chain cheapest-first (stable; None when unchanged).

    Conjunction of similarity values is commutative and associative
    (sums), so any ordering is sound.  The ranking is the planner's
    structural (statistics-free) cost — at rewrite time there is no
    index to consult; the engine's runtime plan refines the evaluation
    order further with real posting-list statistics.
    """
    conjuncts = _conjunction_chain(formula)
    if len(conjuncts) < 3:
        return None
    new_order = order_conjuncts(conjuncts)
    if new_order == conjuncts:
        return None
    rebuilt = new_order[0]
    for conjunct in new_order[1:]:
        rebuilt = ast.And(rebuilt, conjunct)
    return rebuilt
