"""Naive reference semantics — the definitional evaluator of paper §2.5.

This module computes similarity values exactly as the paper *defines*
them: per segment, by structural recursion, with ``∃`` enumerated over the
object universe and ``until`` scanning the future of the sequence.  It is
deliberately simple and slow — its purpose is to be an *oracle* against
which the interval-list algorithms of :mod:`repro.core.ops` and the table
machinery of :mod:`repro.core.engine` are cross-checked.

Conventions pinned down where the paper is silent (mirrored by the
engine, see DESIGN.md):

* ``until`` uses the threshold on the *fractional* similarity of the left
  operand, applied at every segment from the current one up to (not
  including) the witness.
* capturing an undefined attribute with the freeze operator yields actual
  similarity 0 for the whole freeze formula at that segment.
* a level operator applied at a node with no descendants at the target
  level yields actual similarity 0.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.ops import DEFAULT_UNTIL_THRESHOLD
from repro.core.simlist import SIM_EPS, SimilarityList, SimilarityValue
from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.htl.classify import is_non_temporal
from repro.model.hierarchy import Video, VideoNode
from repro.pictures.scoring import (
    Binding,
    eval_term,
    exists_pool,
    max_similarity,
    score,
)

#: Resolver mapping an atomic-predicate name to its similarity list for the
#: sequence at a given level (None when unregistered).
AtomicResolver = Callable[[str, int], Optional[SimilarityList]]


@dataclass
class ReferenceContext:
    """Everything the definitional evaluator needs about one sequence."""

    nodes: Sequence[VideoNode]
    video: Optional[Video] = None
    level: int = 2
    universe: Sequence[str] = ()
    threshold: float = DEFAULT_UNTIL_THRESHOLD
    atomics: Optional[AtomicResolver] = None

    def segment(self, position: int):
        return self.nodes[position - 1].metadata

    def __len__(self) -> int:
        return len(self.nodes)


def reference_list(
    formula: ast.Formula, context: ReferenceContext, binding: Optional[Binding] = None
) -> SimilarityList:
    """Similarity list of a formula over the whole sequence, naively."""
    binding = binding or {}
    values: Dict[int, float] = {}
    maximum = maximum_similarity(formula, context)
    for position in range(1, len(context) + 1):
        actual, __ = reference_value(formula, context, position, binding)
        if actual > SIM_EPS:
            values[position] = actual
    return SimilarityList.from_segment_values(values, maximum)


def maximum_similarity(
    formula: ast.Formula, context: ReferenceContext
) -> float:
    """The maximum similarity ``m(f)`` — a function of the formula alone
    (plus the registered maxima of externally supplied atomics)."""
    if isinstance(formula, ast.AtomicRef):
        resolved = context.atomics(formula.name, context.level) if context.atomics else None
        if resolved is None:
            raise UnsupportedFormulaError(
                f"atomic predicate {formula.name!r} has no registered list"
            )
        return resolved.maximum
    if is_non_temporal(formula):
        return max_similarity(formula)
    if isinstance(formula, ast.And):
        return maximum_similarity(formula.left, context) + maximum_similarity(
            formula.right, context
        )
    if isinstance(formula, ast.Or):
        return max(
            maximum_similarity(formula.left, context),
            maximum_similarity(formula.right, context),
        )
    if isinstance(formula, ast.Until):
        return maximum_similarity(formula.right, context)
    if isinstance(formula, (ast.Next, ast.Eventually, ast.Always)):
        return maximum_similarity(formula.sub, context)
    if isinstance(formula, (ast.Exists, ast.Freeze)):
        return maximum_similarity(formula.sub, context)
    if isinstance(formula, (ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel)):
        return maximum_similarity(formula.sub, _descend_probe(formula, context))
    raise UnsupportedFormulaError(
        f"no similarity semantics for {type(formula).__name__} over "
        "temporal subformulas"
    )


def reference_value(
    formula: ast.Formula,
    context: ReferenceContext,
    position: int,
    binding: Binding,
) -> Tuple[float, float]:
    """Similarity value ``(a, m)`` of ``formula`` at one segment."""
    if isinstance(formula, ast.AtomicRef):
        resolved = context.atomics(formula.name, context.level) if context.atomics else None
        if resolved is None:
            raise UnsupportedFormulaError(
                f"atomic predicate {formula.name!r} has no registered list"
            )
        return resolved.actual_at(position), resolved.maximum
    if is_non_temporal(formula):
        if any(isinstance(node, ast.AtomicRef) for node in formula.walk()):
            return _value_with_embedded_atomics(
                formula, context, position, binding
            )
        actual = score(
            formula, context.segment(position), binding, context.universe
        )
        return actual, max_similarity(formula)
    if isinstance(formula, ast.And):
        left_a, left_m = reference_value(formula.left, context, position, binding)
        right_a, right_m = reference_value(
            formula.right, context, position, binding
        )
        return left_a + right_a, left_m + right_m
    if isinstance(formula, ast.Or):
        left_a, left_m = reference_value(formula.left, context, position, binding)
        right_a, right_m = reference_value(
            formula.right, context, position, binding
        )
        return max(left_a, right_a), max(left_m, right_m)
    if isinstance(formula, ast.Next):
        maximum = maximum_similarity(formula.sub, context)
        if position >= len(context):
            return 0.0, maximum
        actual, __ = reference_value(
            formula.sub, context, position + 1, binding
        )
        return actual, maximum
    if isinstance(formula, ast.Until):
        return _until_value(formula, context, position, binding)
    if isinstance(formula, ast.Eventually):
        maximum = maximum_similarity(formula.sub, context)
        best = 0.0
        for later in range(position, len(context) + 1):
            actual, __ = reference_value(formula.sub, context, later, binding)
            best = max(best, actual)
        return best, maximum
    if isinstance(formula, ast.Always):
        maximum = maximum_similarity(formula.sub, context)
        worst = maximum
        for later in range(position, len(context) + 1):
            actual, __ = reference_value(formula.sub, context, later, binding)
            worst = min(worst, actual)
        return worst, maximum
    if isinstance(formula, ast.Exists):
        return _exists_value(formula, context, position, binding)
    if isinstance(formula, ast.Freeze):
        maximum = maximum_similarity(formula.sub, context)
        captured = eval_term(
            formula.func, context.segment(position), binding
        )
        if captured is None:
            return 0.0, maximum
        extended = dict(binding)
        extended[formula.var] = captured[0]
        actual, __ = reference_value(formula.sub, context, position, extended)
        return actual, maximum
    if isinstance(formula, (ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel)):
        return _level_value(formula, context, position, binding)
    raise UnsupportedFormulaError(
        f"no similarity semantics for {type(formula).__name__} over "
        "temporal subformulas"
    )


# ---------------------------------------------------------------------------
# pieces
# ---------------------------------------------------------------------------
def _until_value(
    formula: ast.Until,
    context: ReferenceContext,
    position: int,
    binding: Binding,
) -> Tuple[float, float]:
    left_maximum = maximum_similarity(formula.left, context)
    maximum = maximum_similarity(formula.right, context)
    best = 0.0
    for witness in range(position, len(context) + 1):
        right_a, __ = reference_value(formula.right, context, witness, binding)
        best = max(best, right_a)
        # To extend the witness past this segment, the left operand must
        # clear the threshold here.
        left_a, __ = reference_value(formula.left, context, witness, binding)
        if left_a / left_maximum + SIM_EPS < context.threshold:
            break
    return best, maximum


def _exists_value(
    formula: ast.Exists,
    context: ReferenceContext,
    position: int,
    binding: Binding,
) -> Tuple[float, float]:
    maximum = maximum_similarity(formula.sub, context)
    pool = exists_pool(context.universe)
    best = 0.0
    for values in itertools.product(pool, repeat=len(formula.vars)):
        extended = dict(binding)
        extended.update(zip(formula.vars, values))
        actual, __ = reference_value(formula.sub, context, position, extended)
        best = max(best, actual)
    return best, maximum


def _level_value(
    formula: Union[ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel],
    context: ReferenceContext,
    position: int,
    binding: Binding,
) -> Tuple[float, float]:
    node = context.nodes[position - 1]
    target = _target_level(formula, context, node)
    descendants = node.descendants_at_level(target)
    child_context = ReferenceContext(
        nodes=descendants,
        video=context.video,
        level=target,
        universe=context.universe,
        threshold=context.threshold,
        atomics=context.atomics,
    )
    maximum = maximum_similarity(formula.sub, child_context)
    if not descendants:
        return 0.0, maximum
    actual, __ = reference_value(formula.sub, child_context, 1, binding)
    return actual, maximum


def _target_level(
    formula: Union[ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel],
    context: ReferenceContext,
    node: VideoNode,
) -> int:
    if isinstance(formula, ast.AtNextLevel):
        return node.level + 1
    if isinstance(formula, ast.AtLevel):
        return formula.level
    if context.video is None:
        raise UnsupportedFormulaError(
            f"named level {formula.level_name!r} needs a video for resolution"
        )
    return context.video.level_of(formula.level_name)


def _descend_probe(
    formula: Union[ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel],
    context: ReferenceContext,
) -> ReferenceContext:
    """A context at the operator's target level, for maxima computation.

    Maxima do not depend on the actual segments, only on the level (for
    nested atomic resolvers), so an empty node list suffices.
    """
    if isinstance(formula, ast.AtNextLevel):
        target = context.level + 1
    elif isinstance(formula, ast.AtLevel):
        target = formula.level
    else:
        if context.video is None:
            raise UnsupportedFormulaError(
                f"named level {formula.level_name!r} needs a video"
            )
        target = context.video.level_of(formula.level_name)
    return ReferenceContext(
        nodes=(),
        video=context.video,
        level=target,
        universe=context.universe,
        threshold=context.threshold,
        atomics=context.atomics,
    )


def _value_with_embedded_atomics(
    formula: ast.Formula,
    context: ReferenceContext,
    position: int,
    binding: Binding,
) -> Tuple[float, float]:
    """Non-temporal conjunctions mixing AtomicRef with metadata predicates."""
    if isinstance(formula, ast.And):
        left_a, left_m = _value_with_embedded_atomics(
            formula.left, context, position, binding
        )
        right_a, right_m = _value_with_embedded_atomics(
            formula.right, context, position, binding
        )
        return left_a + right_a, left_m + right_m
    if not isinstance(formula, ast.AtomicRef) and any(
        isinstance(node, ast.AtomicRef) for node in formula.walk()
    ):
        raise UnsupportedFormulaError(
            "atomic references may only be combined with other conditions "
            f"through conjunction, found one under {type(formula).__name__}"
        )
    return reference_value(formula, context, position, binding)


def value_at(
    formula: ast.Formula,
    context: ReferenceContext,
    position: int,
) -> SimilarityValue:
    """Similarity value of a closed formula at one segment."""
    actual, maximum = reference_value(formula, context, position, {})
    return SimilarityValue(actual, maximum)
