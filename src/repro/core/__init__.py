"""Core similarity-retrieval machinery: lists, tables, engine, oracles."""

from repro.core.cache import CacheStats, EvaluationCache
from repro.core.engine import EngineConfig, RetrievalEngine, actual_upper_bound
from repro.core.explain import explain
from repro.core.optimizer import optimize
from repro.core.extensions import (
    bounded_always,
    bounded_eventually,
    fuzzy_and_lists,
    or_lists,
)
from repro.core.intervals import Interval, coalesce
from repro.core.ops import (
    DEFAULT_UNTIL_THRESHOLD,
    always_list,
    and_lists,
    eventually_list,
    max_merge_lists,
    next_list,
    until_lists,
    until_runs,
)
from repro.core.simlist import (
    SimEntry,
    SimilarityList,
    SimilarityValue,
    set_invariant_checks,
)
from repro.core.resilience import (
    CircuitBreaker,
    QueryBudget,
    ResilienceContext,
    ResiliencePolicy,
    evaluate_with_fallback,
)
from repro.core.tables import INNER, OUTER, SimilarityTable, TableRow
from repro.core.topk import (
    RetrievedSegment,
    TopKResult,
    VideoOutcome,
    ranked_entries,
    top_k_across_videos,
    top_k_segments,
    top_k_videos,
)

__all__ = [
    "SimilarityList",
    "SimilarityValue",
    "SimEntry",
    "Interval",
    "coalesce",
    "and_lists",
    "next_list",
    "until_lists",
    "until_runs",
    "eventually_list",
    "always_list",
    "max_merge_lists",
    "or_lists",
    "fuzzy_and_lists",
    "bounded_eventually",
    "bounded_always",
    "DEFAULT_UNTIL_THRESHOLD",
    "SimilarityTable",
    "TableRow",
    "INNER",
    "OUTER",
    "RetrievalEngine",
    "EngineConfig",
    "EvaluationCache",
    "CacheStats",
    "actual_upper_bound",
    "set_invariant_checks",
    "optimize",
    "explain",
    "RetrievedSegment",
    "TopKResult",
    "VideoOutcome",
    "top_k_segments",
    "top_k_across_videos",
    "top_k_videos",
    "ranked_entries",
    "QueryBudget",
    "CircuitBreaker",
    "ResiliencePolicy",
    "ResilienceContext",
    "evaluate_with_fallback",
]
