"""Cost-based query planning over metadata-index statistics.

The engine's structural recursion evaluates conjunctions and joins in the
order the query was written, and picks the indexed vs. naive atom path by
a blanket config switch.  Both choices leave cheap wins on the table once
the :class:`~repro.pictures.index.MetadataIndex` exists: posting-list
lengths, content-profile dedup ratios and ∃-pool sizes predict which
subformula is cheap and which is selective *before* anything is scored —
the paper's own §4 direction (its SQL baseline gets a real optimizer) and
the algorithmic program of Sistla's follow-up on sequence databases.

The planner compiles an (engine-)formula into a :class:`QueryPlan`:

* **join order** — for every ∧ / until node the plan records which side to
  evaluate first, minimising ``cost(first) + sel(first) × cost(second)``.
  Under the paper's inner join a row-free operand annihilates the join, so
  the engine can skip the second operand outright (substituting a zero-row
  *schema table* with the same columns and maximum — provably the same
  output, see DESIGN.md §13); evaluating the most selective side first
  maximises how often that happens.  The plan never rewrites the formula:
  conjunct *grouping* is semantically significant under the inner join, so
  ordering decisions are per-node evaluation orders, not tree rebuilds.
* **per-atom strategy** — indexed vs. naive scan, chosen by comparing the
  estimated cost of the support-analysis + candidate sweep against the
  full ``bindings × segments`` scan, instead of the blanket
  ``EngineConfig(naive_atoms=...)`` switch.
* **plan caching** — plans are cached in a
  :class:`~repro.core.cache.PlanCache` keyed by the formula's structural
  key, the level, the engine config and the index's *statistics
  signature*.  Two videos (or shards) whose indices summarise identically
  share one plan, so multi-video top-k plans once per distinct index
  shape; the database generation counter invalidates on mutation, exactly
  like :class:`~repro.core.cache.EvaluationCache`.
* **adaptive feedback** — every planned evaluation reports its wall-clock
  back via :meth:`Planner.observe`.  When the observed time diverges from
  the estimate by more than ``replan_ratio`` for ``min_observations``
  consecutive runs, the cached plan is dropped (``plan-replan``), the
  model's ``unit_seconds`` is recalibrated from the observations — and,
  when stage metrics are enabled, the score/merge cost ratio is refit
  from the :class:`~repro.core.trace.MetricsRegistry` stage totals — so
  the rebuilt plan's estimates track the machine it is running on.

The module is engine-agnostic: it imports the picture layer and the cache
but never :mod:`repro.core.engine` (the engine imports *it*), and
:mod:`repro.core.optimizer` reuses :func:`structural_cost` /
:func:`order_conjuncts` as its statistics-free fallback ordering.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core import instrument, trace
from repro.core.cache import PlanCache
from repro.core.simlist import SIM_EPS
from repro.core.tables import INNER
from repro.htl import ast
from repro.htl.classify import is_non_temporal
from repro.htl.variables import free_attr_vars, free_object_vars
from repro.model.metadata import SegmentMetadata
from repro.pictures.scoring import (
    FRESH_OBJECT_ID,
    exists_pool,
    max_similarity,
    score,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pictures.retrieval import PictureRetrievalSystem

#: Always-on counter names (flow into the observability payload via
#: ``instrument.counters()`` like every other ``trace.bump`` counter).
PLAN_BUILT = "plan-built"
PLAN_CACHE_HIT = "plan-cache-hit"
PLAN_CACHE_MISS = "plan-cache-miss"
PLAN_REPLAN = "plan-replan"
PLAN_FAILED = "plan-failed"
PLAN_SKIPPED_SUBFORMULA = "plan-subformula-skipped"

#: Per-atom strategies.
STRATEGY_INDEXED = "indexed"
STRATEGY_NAIVE = "naive"

#: The representative empty segment baselines are probed on.
_EMPTY_SEGMENT = SegmentMetadata()


# ---------------------------------------------------------------------------
# statistics-free fallback (the old optimizer heuristic)
# ---------------------------------------------------------------------------
def structural_cost(conjunct: ast.Formula) -> Tuple[int, int, int]:
    """Purely structural evaluation-cost heuristic for join ordering.

    Lower sorts first: fewer free object variables (smaller tables to
    join), fewer temporal operators (cheaper lists), smaller overall
    size.  This is the planner's fallback when no index statistics exist
    — e.g. :func:`repro.core.optimizer.optimize` rewriting a formula with
    no video in sight.
    """
    n_vars = len(free_object_vars(conjunct))
    n_temporal = sum(
        1
        for node in conjunct.walk()
        if isinstance(node, ast.TEMPORAL_OPERATORS)
    )
    size = sum(1 for __ in conjunct.walk())
    return (n_vars, n_temporal, size)


def order_conjuncts(
    conjuncts: Sequence[ast.Formula],
    key: Optional[Any] = None,
) -> List[ast.Formula]:
    """Stable cheapest-first ordering of a conjunct list.

    ``key`` maps a conjunct to a sortable rank (default
    :func:`structural_cost`); original position breaks ties, so the sort
    is stable and deterministic.
    """
    ranker = structural_cost if key is None else key
    ordered = sorted(
        enumerate(conjuncts),
        key=lambda pair: (ranker(pair[1]), pair[0]),
    )
    return [conjunct for __, conjunct in ordered]


def has_picture_atoms(formula: ast.Formula) -> bool:
    """Does evaluating the formula build any picture-system atom table?

    Pure :class:`~repro.htl.ast.AtomicRef` formulas (registered similarity
    lists) have nothing for the planner to estimate or reorder by
    statistics — building an index signature for them would be pure
    overhead — so the engine skips planning entirely for those.
    """
    if isinstance(formula, ast.AtomicRef):
        return False
    if is_non_temporal(formula):
        if not any(
            isinstance(node, ast.AtomicRef) for node in formula.walk()
        ):
            return True
        if isinstance(formula, ast.And):
            return has_picture_atoms(formula.left) or has_picture_atoms(
                formula.right
            )
        return False
    return any(has_picture_atoms(child) for child in formula.children())


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Statistics:
    """The index numbers one plan is built from, with a hashable signature.

    The signature summarises the index *shape* (segment/profile counts,
    pool size, per-family posting-list length distribution), not its
    contents: two videos that summarise identically share plan-cache
    entries.  A collision costs nothing but estimate accuracy — plans
    never change results.
    """

    n_segments: int
    n_profiles: int
    pool_size: int
    signature: Tuple[Any, ...]

    @classmethod
    def from_pictures(cls, pictures: "PictureRetrievalSystem") -> "Statistics":
        raw = pictures.index.stats()
        families = tuple(
            (
                name,
                entry["keys"],
                entry["entries"],
                entry["lengths"]["p50"],
                entry["lengths"]["max"],
            )
            for name, entry in sorted(raw["postings"].items())
        )
        pools = raw["pools"]
        signature = (
            "stats",
            raw["n_segments"],
            raw["n_profiles"],
            pools["universe"],
            pools["any_object_segments"],
            pools.get("signature_segments", 0),
            families,
        )
        return cls(
            n_segments=raw["n_segments"],
            n_profiles=raw["n_profiles"],
            pool_size=pools["universe"],
            signature=signature,
        )

    @property
    def dedup_factor(self) -> float:
        """Fraction of distinct content profiles (scoring work per sweep)."""
        if not self.n_segments:
            return 1.0
        return self.n_profiles / self.n_segments


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CostModel:
    """Relative per-operation costs, in abstract units.

    ``unit_seconds`` converts units to wall-clock for the adaptive loop;
    it starts at a rough laptop-scale default and is recalibrated from
    observed evaluations.  ``score_cost`` is the unit (one recursive
    ``score()`` of a stored segment); the others are relative to it.
    """

    score_cost: float = 1.0
    #: One support analysis per (atom, binding).
    analysis_cost: float = 0.5
    #: One baseline score on the empty representative segment.
    baseline_cost: float = 1.0
    #: Per segment, per list/table merge step.
    merge_cost: float = 0.05
    #: Resolving one registered atomic list.
    ref_cost: float = 1.0
    #: Estimated elementary ranges per free attribute variable.
    attr_boxes: int = 4
    #: Seconds per cost unit (recalibrated by observation).
    unit_seconds: float = 2e-6
    #: Re-plan when observed/estimated seconds diverge beyond this factor.
    replan_ratio: float = 4.0
    #: ... for at least this many consecutive observations.
    min_observations: int = 2

    def seconds(self, cost: float) -> float:
        return cost * self.unit_seconds

    def recalibrated(self, observed_seconds: float, cost: float) -> "CostModel":
        """A model whose unit matches one observed (seconds, cost) pair.

        When stage metrics are enabled, the score/merge ratio is also
        refit from the measured per-call stage costs — observed atom
        scoring vs. list algebra seconds-per-call — closing the loop from
        the :class:`~repro.core.trace.MetricsRegistry` histograms back
        into the estimates.
        """
        changes: Dict[str, Any] = {}
        if cost > 0 and observed_seconds > 0:
            changes["unit_seconds"] = observed_seconds / cost
        if instrument.is_enabled():
            totals = instrument.totals()
            scoring = totals.get(instrument.ATOM_SCORING)
            algebra = totals.get(instrument.LIST_ALGEBRA)
            if (
                scoring is not None
                and algebra is not None
                and scoring.calls
                and algebra.calls
                and scoring.seconds > 0
            ):
                per_score = scoring.seconds / scoring.calls
                per_merge = algebra.seconds / algebra.calls
                changes["merge_cost"] = max(
                    1e-4, self.score_cost * per_merge / per_score
                )
        if not changes:
            return self
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# plan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NodeEstimate:
    """Estimated evaluation cost (units) and row selectivity of a node.

    ``selectivity`` estimates the probability the node's table has any
    row at all — the quantity inner-join short-circuits care about — so
    unary temporal operators preserve it and ∧ multiplies it.
    """

    cost: float
    selectivity: float


@dataclass(frozen=True)
class AtomChoice:
    """The strategy decision for one picture atom.

    ``match_rate`` is the sampled fraction of stored signatures that
    clear the atom's ``looks_like`` thresholds (DESIGN.md §16) — the
    signature-atom selectivity statistic; ``None`` for atoms without
    signature predicates.
    """

    description: str
    strategy: str
    bindings: int
    candidates: Optional[int]
    indexed_cost: float
    naive_cost: float
    selectivity: float
    match_rate: Optional[float] = None


class QueryPlan:
    """A compiled evaluation plan for one (formula, index-shape, config).

    Immutable decisions (``strategies``, ``swapped``, ``nodes``) plus the
    mutable observation state the adaptive loop updates under the
    planner's lock.
    """

    __slots__ = (
        "key",
        "formula",
        "signature",
        "level",
        "strategies",
        "swapped",
        "nodes",
        "atoms",
        "estimated_cost",
        "estimated_seconds",
        "observations",
        "observed_seconds",
        "divergent_streak",
        "retired",
    )

    def __init__(
        self,
        key: Hashable,
        formula: ast.Formula,
        signature: Tuple[Any, ...],
        level: int,
        strategies: Mapping[str, str],
        swapped: FrozenSet[str],
        nodes: Mapping[str, NodeEstimate],
        atoms: Mapping[str, AtomChoice],
        estimated_cost: float,
        estimated_seconds: float,
    ):
        self.key = key
        self.formula = formula
        self.signature = signature
        self.level = level
        self.strategies = dict(strategies)
        self.swapped = swapped
        self.nodes = dict(nodes)
        self.atoms = dict(atoms)
        self.estimated_cost = estimated_cost
        self.estimated_seconds = estimated_seconds
        self.observations = 0
        self.observed_seconds = 0.0
        self.divergent_streak = 0
        self.retired = False

    # -- engine hooks ---------------------------------------------------
    def atom_use_index(self, key: str) -> Optional[bool]:
        """Indexed-path choice for an atom key (None: no decision)."""
        strategy = self.strategies.get(key)
        if strategy is None:
            return None
        return strategy == STRATEGY_INDEXED

    def right_first(self, formula: ast.Formula) -> bool:
        """Should the engine evaluate this join's right operand first?"""
        return ast.structural_key(formula) in self.swapped

    # -- rendering ------------------------------------------------------
    def describe(self) -> str:
        """Human-readable plan: tree with order/strategy/cost annotations."""
        lines: List[str] = []
        self._describe(self.formula, 0, lines)
        lines.append(
            f"estimated cost: {self.estimated_cost:.1f} units "
            f"(~{self.estimated_seconds * 1000:.3f} ms)"
        )
        if self.observations:
            lines.append(
                f"observed: {self.observed_seconds * 1000:.3f} ms "
                f"(ewma over {self.observations} run(s))"
            )
        return "\n".join(lines)

    def _describe(
        self, formula: ast.Formula, depth: int, lines: List[str]
    ) -> None:
        from repro.core.explain import describe_node

        key = ast.structural_key(formula)
        notes: List[str] = []
        estimate = self.nodes.get(key)
        if estimate is not None:
            notes.append(
                f"cost {estimate.cost:.1f}, sel {estimate.selectivity:.2f}"
            )
        choice = self.atoms.get(key)
        if choice is not None:
            candidates = (
                "all" if choice.candidates is None else str(choice.candidates)
            )
            notes.append(
                f"strategy={choice.strategy}, bindings {choice.bindings}, "
                f"candidates {candidates}/segment sweep "
                f"(indexed {choice.indexed_cost:.1f} vs "
                f"naive {choice.naive_cost:.1f})"
            )
            if choice.match_rate is not None:
                notes.append(f"signature match rate {choice.match_rate:.2f}")
        if isinstance(formula, (ast.And, ast.Until)):
            notes.append(
                "evaluate right first"
                if key in self.swapped
                else "evaluate left first"
            )
        suffix = f"  [{'; '.join(notes)}]" if notes else ""
        lines.append("  " * depth + describe_node(formula) + suffix)
        if choice is None:
            for child in formula.children():
                self._describe(child, depth + 1, lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe document of the plan (the CLI's ``--json`` form)."""
        return {
            "estimated_cost": self.estimated_cost,
            "estimated_seconds": self.estimated_seconds,
            "observations": self.observations,
            "observed_seconds": self.observed_seconds,
            "level": self.level,
            "signature": repr(self.signature),
            "tree": self._node_doc(self.formula),
        }

    def _node_doc(self, formula: ast.Formula) -> Dict[str, Any]:
        from repro.core.explain import describe_node

        key = ast.structural_key(formula)
        doc: Dict[str, Any] = {"node": describe_node(formula)}
        estimate = self.nodes.get(key)
        if estimate is not None:
            doc["cost"] = estimate.cost
            doc["selectivity"] = estimate.selectivity
        choice = self.atoms.get(key)
        if choice is not None:
            doc["strategy"] = choice.strategy
            doc["bindings"] = choice.bindings
            doc["candidates"] = choice.candidates
            doc["indexed_cost"] = choice.indexed_cost
            doc["naive_cost"] = choice.naive_cost
            if choice.match_rate is not None:
                doc["signature_match_rate"] = choice.match_rate
        if isinstance(formula, (ast.And, ast.Until)):
            doc["order"] = (
                "right-first" if key in self.swapped else "left-first"
            )
        if choice is None:
            children = [self._node_doc(child) for child in formula.children()]
            if children:
                doc["children"] = children
        return doc


# ---------------------------------------------------------------------------
# planner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PlannerStats:
    """A snapshot of the planner's work counters."""

    plans_built: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    replans: int = 0
    support_probes: int = 0
    skipped_subformulas: int = 0


class Planner:
    """Builds, caches and adaptively revises query plans.

    Thread-safe: one planner is shared across ``top_k_across_videos``
    worker threads exactly like the evaluation cache.
    """

    def __init__(
        self,
        model: Optional[CostModel] = None,
        cache: Optional[PlanCache] = None,
    ):
        self.model = model or CostModel()
        self.cache = cache if cache is not None else PlanCache()
        self._lock = threading.Lock()
        self._plans_built = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._replans = 0
        self._support_probes = 0
        self._skipped = 0

    # -- introspection --------------------------------------------------
    @property
    def stats(self) -> PlannerStats:
        with self._lock:
            return PlannerStats(
                plans_built=self._plans_built,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                replans=self._replans,
                support_probes=self._support_probes,
                skipped_subformulas=self._skipped,
            )

    def record_skip(self) -> None:
        """The engine short-circuited one join operand under this planner."""
        with self._lock:
            self._skipped += 1
        trace.bump(PLAN_SKIPPED_SUBFORMULA)

    # -- planning -------------------------------------------------------
    def plan_for(
        self,
        formula: ast.Formula,
        pictures: "PictureRetrievalSystem",
        level: int,
        config: Hashable,
        generation: Optional[int] = None,
        video: Optional[str] = None,
    ) -> QueryPlan:
        """The cached plan for one (formula, index, level, config).

        ``generation`` is a mutation counter that keeps the plan cache
        coherent across index rebuilds.  With ``video`` it is the owning
        video's per-video stamp and only that video's tagged plans retire
        on a change (:meth:`PlanCache.sync_video`); without it, it is the
        database-wide counter and any change drops every plan, exactly
        like :meth:`EvaluationCache.sync`.
        """
        if generation is not None:
            if video is not None:
                self.cache.sync_video(video, generation)
            else:
                self.cache.sync(generation)
        stats = Statistics.from_pictures(pictures)
        key = ("plan", ast.structural_key(formula), level, config, stats.signature)
        cached = self.cache.get(key)
        if cached is not None:
            with self._lock:
                self._cache_hits += 1
            trace.bump(PLAN_CACHE_HIT)
            return cached
        with self._lock:
            self._cache_misses += 1
        trace.bump(PLAN_CACHE_MISS)
        plan = self._build(formula, pictures, stats, level, config, key)
        self.cache.put(key, plan, video=video)
        return plan

    def _build(
        self,
        formula: ast.Formula,
        pictures: "PictureRetrievalSystem",
        stats: Statistics,
        level: int,
        config: Hashable,
        key: Hashable,
    ) -> QueryPlan:
        builder = _PlanBuilder(self.model, pictures, stats, config)
        total = builder.estimate(formula)
        with self._lock:
            self._plans_built += 1
            self._support_probes += builder.probes
        trace.bump(PLAN_BUILT)
        return QueryPlan(
            key=key,
            formula=formula,
            signature=stats.signature,
            level=level,
            strategies=builder.strategies,
            swapped=frozenset(builder.swapped),
            nodes=builder.nodes,
            atoms=builder.atoms,
            estimated_cost=total.cost,
            estimated_seconds=self.model.seconds(total.cost),
        )

    # -- adaptive feedback ----------------------------------------------
    def observe(self, plan: QueryPlan, seconds: float) -> None:
        """Report one planned evaluation's wall-clock back to the model.

        Tracks an exponentially-weighted observed time per plan; when it
        stays outside ``replan_ratio`` of the estimate for
        ``min_observations`` consecutive runs, the plan is retired from
        the cache, the model recalibrated, and the next evaluation
        re-plans with estimates fitted to the observations.
        """
        model = self.model
        with self._lock:
            plan.observations += 1
            if plan.observations == 1:
                plan.observed_seconds = seconds
            else:
                plan.observed_seconds = (
                    0.5 * plan.observed_seconds + 0.5 * seconds
                )
            estimate = max(plan.estimated_seconds, 1e-9)
            ratio = plan.observed_seconds / estimate
            divergent = (
                ratio > model.replan_ratio or ratio < 1.0 / model.replan_ratio
            )
            if not divergent:
                plan.divergent_streak = 0
                return
            plan.divergent_streak += 1
            if plan.divergent_streak < model.min_observations or plan.retired:
                return
            plan.retired = True
            plan.divergent_streak = 0
            self._replans += 1
            self.model = model.recalibrated(
                plan.observed_seconds, plan.estimated_cost
            )
        self.cache.invalidate(plan.key)
        trace.bump(PLAN_REPLAN)


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------
class _PlanBuilder:
    """One plan construction: walks the formula mirroring engine dispatch."""

    def __init__(
        self,
        model: CostModel,
        pictures: "PictureRetrievalSystem",
        stats: Statistics,
        config: Any,
    ):
        self.model = model
        self.pictures = pictures
        self.stats = stats
        self.config = config
        self.pool: List[str] = exists_pool(pictures.universe)
        self.strategies: Dict[str, str] = {}
        self.swapped: Set[str] = set()
        self.nodes: Dict[str, NodeEstimate] = {}
        self.atoms: Dict[str, AtomChoice] = {}
        self.probes = 0
        self._inner = getattr(config, "join_mode", INNER) == INNER

    def estimate(self, formula: ast.Formula) -> NodeEstimate:
        key = ast.structural_key(formula)
        cached = self.nodes.get(key)
        if cached is not None:
            return cached
        result = self._estimate(formula)
        self.nodes[key] = result
        return result

    def _estimate(self, formula: ast.Formula) -> NodeEstimate:
        model = self.model
        n = self.stats.n_segments
        if isinstance(formula, ast.AtomicRef):
            # Registered list lookup; row-free only when unregistered
            # (which raises anyway), so selectivity 1.
            return NodeEstimate(model.ref_cost, 1.0)
        if is_non_temporal(formula):
            if any(
                isinstance(node, ast.AtomicRef) for node in formula.walk()
            ):
                if isinstance(formula, ast.And):
                    return self._join(formula)
                # The engine rejects refs under anything but ∧; cost moot.
                return NodeEstimate(model.ref_cost, 1.0)
            return self._atom(formula)
        if isinstance(formula, (ast.And, ast.Until)):
            return self._join(formula)
        if isinstance(formula, ast.Or):
            left = self.estimate(formula.left)
            right = self.estimate(formula.right)
            sel = min(
                1.0,
                left.selectivity
                + right.selectivity
                - left.selectivity * right.selectivity,
            )
            cost = left.cost + right.cost + model.merge_cost * max(1, n)
            return NodeEstimate(cost, sel)
        if isinstance(
            formula,
            (ast.Next, ast.Eventually, ast.Always, ast.Exists, ast.Freeze),
        ):
            # Unary operators transform rows in place: a row-free input
            # stays row-free and vice versa, so selectivity is preserved.
            sub = self.estimate(formula.sub)
            return NodeEstimate(
                sub.cost + model.merge_cost * max(1, n), sub.selectivity
            )
        if isinstance(formula, ast.LEVEL_OPERATORS):
            # One descent per outer node; statistics describe the outer
            # level, so this is a deliberately crude upper-ish bound.
            sub = self.estimate(formula.sub)
            return NodeEstimate(
                sub.cost * max(1, n), sub.selectivity
            )
        return NodeEstimate(model.merge_cost * max(1, n), 1.0)

    def _join(self, formula: ast.Formula) -> NodeEstimate:
        left = self.estimate(formula.left)
        right = self.estimate(formula.right)
        model = self.model
        join_cost = model.merge_cost * max(1, self.stats.n_segments)
        if self._inner:
            # Expected cost of each evaluation order: the second operand
            # runs only when the first produced rows (otherwise the
            # inner join is decided and the engine skips it).
            left_first = left.cost + left.selectivity * right.cost
            right_first = right.cost + right.selectivity * left.cost
            if right_first < left_first:
                self.swapped.add(ast.structural_key(formula))
            cost = min(left_first, right_first) + join_cost
        else:
            # Outer joins always evaluate both sides; order is moot.
            cost = left.cost + right.cost + join_cost
        return NodeEstimate(cost, left.selectivity * right.selectivity)

    # -- atoms ----------------------------------------------------------
    def _atom(self, atom: ast.Formula) -> NodeEstimate:
        key = ast.structural_key(atom)
        model = self.model
        n = self.stats.n_segments
        object_vars = sorted(free_object_vars(atom))
        attr_vars = sorted(free_attr_vars(atom))
        typed_pool = self._typed_candidates(atom, object_vars)
        bindings = 1
        for name in object_vars:
            bindings *= len(typed_pool[name])
        if attr_vars:
            bindings *= model.attr_boxes ** len(attr_vars)
        representative = self._representative_binding(object_vars, typed_pool)
        candidates = self._probe_candidates(atom, representative)
        dedup = self.stats.dedup_factor
        match_rate = self._signature_match_rate(atom)
        score_cost = model.score_cost
        if match_rate is not None:
            # The L1-bound short-circuit skips the SSIM pass on windows
            # that cannot clear θ, roughly halving the per-segment score
            # work for non-matching signatures (DESIGN.md §16).
            score_cost *= 0.5 + 0.5 * match_rate
        if candidates is None:
            indexed = bindings * (
                model.analysis_cost + n * score_cost * dedup
            )
        else:
            indexed = bindings * (
                model.analysis_cost
                + model.baseline_cost
                + candidates * score_cost * dedup
            )
        naive = bindings * max(1, n) * score_cost
        strategy = STRATEGY_INDEXED if indexed <= naive else STRATEGY_NAIVE
        selectivity = self._atom_selectivity(
            atom, representative, object_vars, candidates
        )
        self.strategies[key] = strategy
        self.atoms[key] = AtomChoice(
            description=_clip(atom),
            strategy=strategy,
            bindings=bindings,
            candidates=candidates,
            indexed_cost=indexed,
            naive_cost=naive,
            selectivity=selectivity,
            match_rate=match_rate,
        )
        cost = indexed if strategy == STRATEGY_INDEXED else naive
        return NodeEstimate(cost, selectivity)

    def _typed_candidates(
        self, atom: ast.Formula, object_vars: Sequence[str]
    ) -> Dict[str, List[str]]:
        """Per-variable pool narrowing from *required* type constraints.

        The conjunctive skeleton of the atom is walked (∧ / weight /
        freeze only — a ``type(x) = 'T'`` under ¬ or ∨ does not bound
        ``x``) and each equality against a type constant intersects that
        variable's pool with :meth:`MetadataIndex.object_ids_of_type`.
        This is an *estimate* input only: the runtime pool is never
        narrowed here, so an over-eager cut can at worst misorder a
        join, never change a result.
        """
        candidates = {name: list(self.pool) for name in object_vars}
        if not object_vars:
            return candidates
        index = self.pictures.index
        stack = [atom]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.And):
                stack.append(node.left)
                stack.append(node.right)
            elif isinstance(node, (ast.Weighted, ast.Freeze)):
                stack.append(node.sub)
            elif (
                isinstance(node, ast.Compare)
                and node.op == "="
                and isinstance(node.left, ast.AttrFunc)
                and node.left.name == "type"
                and len(node.left.args) == 1
                and isinstance(node.left.args[0], ast.ObjectVar)
                and isinstance(node.right, ast.Const)
                and isinstance(node.right.value, str)
            ):
                name = node.left.args[0].name
                if name in candidates:
                    typed = set(index.object_ids_of_type(node.right.value))
                    candidates[name] = [
                        object_id
                        for object_id in candidates[name]
                        if object_id in typed
                    ]
        return candidates

    def _representative_binding(
        self,
        object_vars: Sequence[str],
        typed_pool: Dict[str, List[str]],
    ) -> Dict[str, Any]:
        """Bind every free variable to its most widely-present pool id.

        The widest presence posting over-covers most other assignments,
        making the probed candidate count a representative (slightly
        pessimistic) per-binding estimate.  Variables are drawn from
        their type-narrowed pools so a rare-typed variable probes a
        rare object, not the corpus-wide most common one.
        """
        if not object_vars:
            return {}
        index = self.pictures.index
        binding: Dict[str, Any] = {}
        for name in object_vars:
            best: Optional[Tuple[str, int]] = None
            for object_id in typed_pool.get(name, self.pool):
                if object_id == FRESH_OBJECT_ID:
                    continue
                length = len(index.segments_with_object(object_id))
                if best is None or length > best[1]:
                    best = (object_id, length)
            binding[name] = best[0] if best is not None else FRESH_OBJECT_ID
        return binding

    def _signature_match_rate(self, atom: ast.Formula) -> Optional[float]:
        """Sampled match rate of the atom's ``looks_like`` predicates.

        ``None`` when the atom has none (no discount applies).  With
        several signature predicates the *widest* rate is kept — a
        conservative (least-discounting) combination.
        """
        from repro.pictures.signature import (
            looks_like_atoms,
            signature_match_rate,
        )

        nodes = looks_like_atoms(atom)
        if not nodes:
            return None
        signatures = [
            segment.signature for segment in self.pictures.segments
        ]
        return max(
            signature_match_rate(node, signatures) for node in nodes
        )

    def _probe_candidates(
        self, atom: ast.Formula, binding: Dict[str, Any]
    ) -> Optional[int]:
        """Candidate-set size under the representative binding (None: all)."""
        self.probes += 1
        try:
            support = self.pictures.atom_support(
                atom, binding, self.pool, charge=False
            )
        except Exception:
            return None
        if support.candidates is None:
            return None
        return len(support.candidates)

    def _atom_selectivity(
        self,
        atom: ast.Formula,
        binding: Dict[str, Any],
        object_vars: Sequence[str],
        candidates: Optional[int],
    ) -> float:
        if not object_vars:
            # Closed atoms keep their single row even at similarity zero.
            return 1.0
        if candidates is None:
            return 1.0
        try:
            baseline = score(
                atom, _EMPTY_SEGMENT, binding, self.pool, narrow=True
            )
        except Exception:
            return 1.0
        if baseline > SIM_EPS:
            # A nonzero baseline (¬ / ∨ atoms) makes every binding's list
            # nonempty: the table always has rows.
            return 1.0
        if not self.stats.n_segments:
            return 0.0
        return min(1.0, candidates / self.stats.n_segments)


def _clip(atom: ast.Formula, limit: int = 60) -> str:
    from repro.htl.pretty import pretty

    text = pretty(atom)
    return text if len(text) <= limit else text[: limit - 3] + "..."
