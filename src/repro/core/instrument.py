"""Per-stage wall-clock counters for the retrieval pipeline.

Evaluation time splits across three stages — scoring atoms in the picture
layer, combining similarity lists/tables in the engine, and ranking in
top-k — and perf regressions are much easier to attribute when each stage
reports its own total.  This module is the low-level switchboard: the
engine and top-k wrap their hot sections in :func:`stage`, which is a
near-free no-op until :func:`enable` turns collection on (the benchmark
harness re-exports a reporting facade as :mod:`repro.bench.stages`).

Lives under :mod:`repro.core` rather than :mod:`repro.bench` so the
engine can import it without a dependency cycle (``repro.bench`` imports
the engine).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

#: Canonical stage names used across the engine.
ATOM_SCORING = "atom-scoring"
LIST_ALGEBRA = "list-algebra"
TOP_K = "top-k"

#: Canonical event-counter names of the resilience layer.  Unlike stage
#: timings, counters are always on: they record rare control-flow events
#: (fallbacks, breaker trips, budget overruns), so the bookkeeping cost is
#: paid only when something already went wrong.
ATOM_FALLBACK = "atom-fallback"
ATOM_BREAKER_OPEN = "atom-breaker-open"
ENGINE_FALLBACK = "engine-fallback"
SQL_FALLBACK = "sql-fallback"
BUDGET_EXCEEDED = "budget-exceeded"
BREAKER_OPENED = "breaker-opened"
BREAKER_RECOVERED = "breaker-recovered"
FAULT_INJECTED = "fault-injected"

#: Canonical event-counter names of the durable store (DESIGN.md §9).
#: Every recovery action the store takes is surfaced here, so an
#: operator can tell "loaded clean" from "loaded after quarantining a
#: rotten artifact and falling back one snapshot".
STORE_SNAPSHOT_SAVED = "store-snapshot-saved"
STORE_SNAPSHOT_LOADED = "store-snapshot-loaded"
STORE_ARTIFACT_QUARANTINED = "store-artifact-quarantined"
STORE_SNAPSHOT_FALLBACK = "store-snapshot-fallback"
STORE_INDEX_REBUILT = "store-index-rebuilt"
STORE_MANIFEST_RECOVERED = "store-manifest-recovered"

_enabled = False
_lock = threading.Lock()


@dataclass
class StageTotal:
    """Accumulated wall-clock seconds and entry count of one stage."""

    seconds: float = 0.0
    calls: int = 0


_totals: Dict[str, StageTotal] = {}
_counters: Dict[str, int] = {}


def enable(reset: bool = True) -> None:
    """Start collecting stage timings (optionally clearing old totals)."""
    global _enabled
    if reset:
        globals()["_totals"] = {}
        globals()["_counters"] = {}
    _enabled = True


def disable() -> None:
    """Stop collecting; accumulated totals stay readable."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear all accumulated totals and event counters."""
    globals()["_totals"] = {}
    globals()["_counters"] = {}


def totals() -> Dict[str, StageTotal]:
    """Snapshot of the per-stage totals (copies, safe to mutate)."""
    with _lock:
        return {
            name: StageTotal(total.seconds, total.calls)
            for name, total in _totals.items()
        }


def add(name: str, seconds: float, calls: int = 1) -> None:
    """Credit time to a stage directly (thread-safe)."""
    with _lock:
        total = _totals.get(name)
        if total is None:
            total = _totals[name] = StageTotal()
        total.seconds += seconds
        total.calls += calls


def count(name: str, n: int = 1) -> None:
    """Bump an event counter (thread-safe, always on)."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + n


def counters() -> Dict[str, int]:
    """Snapshot of the event counters (a copy, safe to mutate)."""
    with _lock:
        return dict(_counters)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the enclosed block against ``name`` when collection is on.

    Nested same-name stages double-count by design — wrap only the
    outermost hot sections.  When disabled the overhead is one global
    read.
    """
    if not _enabled:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        add(name, time.perf_counter() - started)
