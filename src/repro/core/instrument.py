"""Compatibility facade over the process metrics registry.

Evaluation time splits across three stages — scoring atoms in the picture
layer, combining similarity lists/tables in the engine, and ranking in
top-k — and perf regressions are much easier to attribute when each stage
reports its own total.  This module keeps the original flat-function API
(``enable``/``stage``/``totals``/``count``/...) but every call now
delegates to :data:`repro.core.trace.METRICS`, the thread-safe
:class:`~repro.core.trace.MetricsRegistry` shared with the per-query
tracing layer (DESIGN.md §10).  That move fixes three long-standing
defects of the old module-global implementation:

* ``enable(reset=True)`` / ``reset()`` used to rebind the totals and
  counter dicts without holding the lock, so parallel top-k workers kept
  writing into the discarded dict — updates were lost.  The registry
  clears in place under its lock instead.
* nested same-name :func:`stage` blocks double-counted wall-clock; only
  the outermost frame of a name (per thread) is credited now.
* :func:`stage` read the enabled flag once at entry; the exit path
  re-checks it, so a block is credited only when collection is enabled
  at both entry and exit (``disable()`` mid-block drops the in-flight
  block, ``enable()`` mid-block takes effect at the next entry).

New capability surfaces alongside the legacy names: latency histograms
(:func:`observe` / :func:`histograms` with p50/p95/p99 summaries),
coherent :func:`snapshot`, and atomic snapshot-and-clear :func:`drain`.

Lives under :mod:`repro.core` rather than :mod:`repro.bench` so the
engine can import it without a dependency cycle (``repro.bench`` imports
the engine; the benchmark harness re-exports a reporting facade as
:mod:`repro.bench.stages`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.core.trace import (
    ATOM_SCORING,
    LIST_ALGEBRA,
    METRICS,
    TOP_K,
    HistogramSummary,
    StageTotal,
)

__all__ = [
    "ATOM_SCORING",
    "LIST_ALGEBRA",
    "TOP_K",
    "ATOM_FALLBACK",
    "ATOM_BREAKER_OPEN",
    "ENGINE_FALLBACK",
    "SQL_FALLBACK",
    "BUDGET_EXCEEDED",
    "BREAKER_OPENED",
    "BREAKER_RECOVERED",
    "FAULT_INJECTED",
    "STORE_SNAPSHOT_SAVED",
    "STORE_SNAPSHOT_LOADED",
    "STORE_ARTIFACT_QUARANTINED",
    "STORE_SNAPSHOT_FALLBACK",
    "STORE_INDEX_REBUILT",
    "STORE_MANIFEST_RECOVERED",
    "SHARD_LOADED",
    "SHARD_FAILED",
    "QUERY_LATENCY",
    "VIDEO_LATENCY",
    "StageTotal",
    "HistogramSummary",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "totals",
    "add",
    "count",
    "counters",
    "observe",
    "histograms",
    "snapshot",
    "drain",
    "stage",
]

#: Canonical event-counter names of the resilience layer.  Unlike stage
#: timings, counters are always on: they record rare control-flow events
#: (fallbacks, breaker trips, budget overruns), so the bookkeeping cost is
#: paid only when something already went wrong.
ATOM_FALLBACK = "atom-fallback"
ATOM_BREAKER_OPEN = "atom-breaker-open"
ENGINE_FALLBACK = "engine-fallback"
SQL_FALLBACK = "sql-fallback"
BUDGET_EXCEEDED = "budget-exceeded"
BREAKER_OPENED = "breaker-opened"
BREAKER_RECOVERED = "breaker-recovered"
FAULT_INJECTED = "fault-injected"

#: Canonical event-counter names of the durable store (DESIGN.md §9).
#: Every recovery action the store takes is surfaced here, so an
#: operator can tell "loaded clean" from "loaded after quarantining a
#: rotten artifact and falling back one snapshot".
STORE_SNAPSHOT_SAVED = "store-snapshot-saved"
STORE_SNAPSHOT_LOADED = "store-snapshot-loaded"
STORE_ARTIFACT_QUARANTINED = "store-artifact-quarantined"
STORE_SNAPSHOT_FALLBACK = "store-snapshot-fallback"
STORE_INDEX_REBUILT = "store-index-rebuilt"
STORE_MANIFEST_RECOVERED = "store-manifest-recovered"

#: Canonical event-counter names of the sharded corpus (DESIGN.md §12).
SHARD_LOADED = "shard-loaded"
SHARD_FAILED = "shard-failed"
SHARD_LOAD_RETRIED = "shard-load-retried"

#: Canonical event-counter names of the serving layer (DESIGN.md §14).
#: The first six are the request ledger — every admitted request bumps
#: exactly one of completed/timed-out/shed, which is the conservation
#: law the chaos suite asserts.
SERVE_ADMITTED = "serve-admitted"
SERVE_REJECTED = "serve-rejected"
SERVE_COMPLETED = "serve-completed"
SERVE_TIMED_OUT = "serve-timed-out"
SERVE_SHED = "serve-shed"
SERVE_DEGRADED = "serve-degraded"
SERVE_REQUEUED = "serve-requeued"

#: Canonical event-counter names of the streaming-ingest layer
#: (DESIGN.md §15).  The append/commit pair is the durability ledger
#: (records written vs. records made durable); the replay/truncate/
#: quarantine trio surfaces every recovery action, mirroring the store's
#: counters above.
WAL_RECORD_APPENDED = "wal-record-appended"
WAL_COMMITTED = "wal-committed"
WAL_RECORD_REPLAYED = "wal-record-replayed"
WAL_TAIL_TRUNCATED = "wal-tail-truncated"
WAL_RECORD_QUARANTINED = "wal-record-quarantined"
INGEST_CHECKPOINT = "ingest-checkpoint"
INDEX_APPENDED = "index-appended"

#: Canonical event-counter name of the analyzer's signature stage
#: (DESIGN.md §16): a shot whose content-signature build failed and was
#: annotated signature-less (annotation-only metadata) instead.
SIGNATURE_DEGRADED = "signature-degraded"

#: Canonical latency-histogram names of the top-k layer (seconds).
QUERY_LATENCY = "query-seconds"
VIDEO_LATENCY = "video-seconds"

#: Canonical latency-histogram names of the serving layer (seconds).
SERVE_ADMISSION_LATENCY = "serve-admission-seconds"
SERVE_QUEUE_WAIT = "serve-queue-wait-seconds"
SERVE_REQUEST_LATENCY = "serve-request-seconds"


def enable(reset: bool = True) -> None:
    """Start collecting stage timings (optionally clearing old totals)."""
    METRICS.enable(reset)


def disable() -> None:
    """Stop collecting; accumulated totals stay readable."""
    METRICS.disable()


def is_enabled() -> bool:
    return METRICS.is_enabled()


def reset() -> None:
    """Clear all accumulated totals, counters and histograms."""
    METRICS.reset()


def totals() -> Dict[str, StageTotal]:
    """Snapshot of the per-stage totals (copies, safe to mutate)."""
    return METRICS.totals()


def add(name: str, seconds: float, calls: int = 1) -> None:
    """Credit time to a stage directly (thread-safe)."""
    METRICS.add(name, seconds, calls)


def count(name: str, n: int = 1) -> None:
    """Bump an event counter (thread-safe, always on)."""
    METRICS.count(name, n)


def counters() -> Dict[str, int]:
    """Snapshot of the event counters (a copy, safe to mutate)."""
    return METRICS.counters()


def observe(name: str, value: float) -> None:
    """Record one latency sample (collected only while enabled)."""
    METRICS.observe(name, value)


def histograms() -> Dict[str, HistogramSummary]:
    """Snapshot of every latency histogram's p50/p95/p99 summary."""
    return METRICS.histograms()


def snapshot() -> Dict[str, Any]:
    """One coherent snapshot of stages + counters + histograms."""
    return METRICS.snapshot()


def drain() -> Dict[str, Any]:
    """Atomically snapshot *and clear* everything (counts conserved)."""
    return METRICS.drain()


def stage(name: str) -> Iterator[None]:
    """Time the enclosed block against ``name`` when collection is on.

    Only the outermost frame of a name (per thread) is credited, and only
    when collection is enabled at both entry and exit — see
    :meth:`repro.core.trace.MetricsRegistry.stage` for the full
    semantics.  When disabled the overhead is one attribute read.
    """
    return METRICS.stage(name)
