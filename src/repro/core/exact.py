"""Exact-match (boolean) semantics of HTL (paper §2.3).

The paper defines the classical satisfaction relation before similarity:
this module implements it, both because related work (e.g. the video
algebra of [30]) retrieves by exact match — so the comparison examples
need it — and because exact satisfaction is a useful oracle: a segment
that exactly satisfies a formula must receive the full similarity ``a = m``
under the similarity semantics, and that implication is property-tested.

Negation and disjunction are fully supported here (unlike the similarity
algorithms, which cover extended conjunctive formulas only).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.simlist import SIM_EPS, SimilarityList
from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.model.hierarchy import Video, VideoNode
from repro.pictures.scoring import Binding, compare_values, eval_term


@dataclass
class ExactContext:
    """A proper sequence plus what ``∃`` and level names need."""

    nodes: Sequence[VideoNode]
    video: Optional[Video] = None
    universe: Sequence[str] = ()
    atomics: Optional[Dict[str, SimilarityList]] = None

    def segment(self, position: int):
        return self.nodes[position - 1].metadata

    def __len__(self) -> int:
        return len(self.nodes)


def satisfies(
    formula: ast.Formula,
    context: ExactContext,
    position: int,
    binding: Optional[Binding] = None,
) -> bool:
    """Classical satisfaction of ``formula`` at segment ``position``."""
    return _sat(formula, context, position, binding or {})


def satisfying_positions(
    formula: ast.Formula, context: ExactContext
) -> List[int]:
    """All positions of the sequence exactly satisfying a closed formula."""
    return [
        position
        for position in range(1, len(context) + 1)
        if _sat(formula, context, position, {})
    ]


def _sat(
    formula: ast.Formula,
    context: ExactContext,
    position: int,
    binding: Binding,
) -> bool:
    if isinstance(formula, ast.Truth):
        return True
    if isinstance(formula, ast.Present):
        object_id = binding.get(formula.var.name)
        return isinstance(object_id, str) and context.segment(
            position
        ).has_object(object_id)
    if isinstance(formula, ast.Compare):
        left = eval_term(formula.left, context.segment(position), binding)
        right = eval_term(formula.right, context.segment(position), binding)
        if left is None or right is None:
            return False
        return compare_values(formula.op, left[0], right[0])
    if isinstance(formula, ast.Rel):
        values = []
        for arg in formula.args:
            evaluated = eval_term(arg, context.segment(position), binding)
            if evaluated is None:
                return False
            values.append(evaluated[0])
        return (
            context.segment(position).find_relationship(
                formula.name, tuple(values)
            )
            is not None
        )
    if isinstance(formula, ast.AtomicRef):
        if not context.atomics or formula.name not in context.atomics:
            raise UnsupportedFormulaError(
                f"atomic predicate {formula.name!r} has no registered list"
            )
        resolved = context.atomics[formula.name]
        # Exact match means full similarity.
        return (
            resolved.actual_at(position) >= resolved.maximum - SIM_EPS
        )
    if isinstance(formula, ast.Weighted):
        return _sat(formula.sub, context, position, binding)
    if isinstance(formula, ast.And):
        return _sat(formula.left, context, position, binding) and _sat(
            formula.right, context, position, binding
        )
    if isinstance(formula, ast.Or):
        return _sat(formula.left, context, position, binding) or _sat(
            formula.right, context, position, binding
        )
    if isinstance(formula, ast.Not):
        return not _sat(formula.sub, context, position, binding)
    if isinstance(formula, ast.Next):
        if position >= len(context):
            return False
        return _sat(formula.sub, context, position + 1, binding)
    if isinstance(formula, ast.Until):
        for witness in range(position, len(context) + 1):
            if _sat(formula.right, context, witness, binding):
                return True
            if not _sat(formula.left, context, witness, binding):
                return False
        return False
    if isinstance(formula, ast.Eventually):
        return any(
            _sat(formula.sub, context, later, binding)
            for later in range(position, len(context) + 1)
        )
    if isinstance(formula, ast.Always):
        return all(
            _sat(formula.sub, context, later, binding)
            for later in range(position, len(context) + 1)
        )
    if isinstance(formula, ast.Exists):
        pool = list(context.universe)
        if not pool:
            return _sat(formula.sub, context, position, binding)
        for values in itertools.product(pool, repeat=len(formula.vars)):
            extended = dict(binding)
            extended.update(zip(formula.vars, values))
            if _sat(formula.sub, context, position, extended):
                return True
        return False
    if isinstance(formula, ast.Freeze):
        captured = eval_term(formula.func, context.segment(position), binding)
        if captured is None:
            return False
        extended = dict(binding)
        extended[formula.var] = captured[0]
        return _sat(formula.sub, context, position, extended)
    if isinstance(formula, (ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel)):
        node = context.nodes[position - 1]
        if isinstance(formula, ast.AtNextLevel):
            target = node.level + 1
        elif isinstance(formula, ast.AtLevel):
            target = formula.level
        else:
            if context.video is None:
                raise UnsupportedFormulaError(
                    f"named level {formula.level_name!r} needs a video"
                )
            target = context.video.level_of(formula.level_name)
        descendants = node.descendants_at_level(target)
        if not descendants:
            return False
        child_context = ExactContext(
            nodes=descendants,
            video=context.video,
            universe=context.universe,
            atomics=context.atomics,
        )
        return _sat(formula.sub, child_context, 1, binding)
    raise UnsupportedFormulaError(
        f"no exact semantics for {type(formula).__name__}"
    )
