"""Closed integer intervals of video-segment ids.

The paper compresses similarity tables by storing runs of consecutive
segment ids as ``[beg_id, end_id]`` intervals.  This module supplies the
interval type and the handful of interval computations the list algorithms
need (intersection, adjacency, coalescing).

Segment ids are 1-based, matching the paper ("these segments are numbered
sequentially starting from 1").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.errors import InvalidIntervalError


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[begin, end]`` of segment ids, ``begin <= end``."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.begin, int) or not isinstance(self.end, int):
            raise InvalidIntervalError(
                f"interval endpoints must be ints, got ({self.begin!r}, {self.end!r})"
            )
        if self.begin > self.end:
            raise InvalidIntervalError(
                f"interval begin {self.begin} exceeds end {self.end}"
            )
        if self.begin < 1:
            raise InvalidIntervalError(
                f"segment ids are 1-based, got begin {self.begin}"
            )

    def __len__(self) -> int:
        return self.end - self.begin + 1

    def __contains__(self, segment_id: int) -> bool:
        return self.begin <= segment_id <= self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.begin, self.end + 1))

    def intersects(self, other: "Interval") -> bool:
        """Return True when the two intervals share at least one id."""
        return self.begin <= other.end and other.begin <= self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the common sub-interval, or None when disjoint."""
        begin = max(self.begin, other.begin)
        end = min(self.end, other.end)
        if begin > end:
            return None
        return Interval(begin, end)

    def adjacent_to(self, other: "Interval") -> bool:
        """Return True when the intervals touch without overlapping.

        ``[1,4]`` and ``[5,9]`` are adjacent; ``[1,4]`` and ``[6,9]`` are not.
        """
        return self.end + 1 == other.begin or other.end + 1 == self.begin

    def shift(self, delta: int) -> Optional["Interval"]:
        """Translate by ``delta``, clamping to the 1-based id axis.

        Returns None when the whole interval falls off the axis.  Used by
        the ``next`` operator, which maps ``[u, v]`` to ``[u-1, v-1]``.
        """
        begin = self.begin + delta
        end = self.end + delta
        if end < 1:
            return None
        return Interval(max(begin, 1), end)

    def clamp(self, lo: int, hi: int) -> Optional["Interval"]:
        """Restrict to ``[lo, hi]``; None when nothing remains."""
        begin = max(self.begin, lo)
        end = min(self.end, hi)
        if begin > end:
            return None
        return Interval(begin, end)


def coalesce(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping or adjacent intervals into maximal runs.

    Input order is irrelevant; output is sorted and pairwise
    non-adjacent/non-overlapping.  This is the normalisation the UNTIL
    algorithm applies to the thresholded L1 list ("combine all consecutive
    entries ... whose intervals are adjacent into a single entry").
    """
    ordered = sorted(intervals)
    merged: List[Interval] = []
    for interval in ordered:
        if merged and interval.begin <= merged[-1].end + 1:
            last = merged[-1]
            if interval.end > last.end:
                merged[-1] = Interval(last.begin, interval.end)
        else:
            merged.append(interval)
    return merged


def total_length(intervals: Iterable[Interval]) -> int:
    """Total number of segment ids covered (intervals assumed disjoint)."""
    return sum(len(interval) for interval in intervals)


def covers(intervals: Iterable[Interval], segment_id: int) -> bool:
    """Return True when any interval of a *sorted disjoint* run covers the id.

    Uses linear scan with early exit; callers needing many probes should use
    :meth:`repro.core.simlist.SimilarityList.value_at`, which bisects.
    """
    for interval in intervals:
        if segment_id < interval.begin:
            return False
        if segment_id <= interval.end:
            return True
    return False
