"""The video retrieval engine — the paper's "similarity list generator".

Given an HTL query (an extended conjunctive formula), a video and the level
at which the query is asserted, the engine computes the query's similarity
list by structural recursion, combining the similarity tables of the
atomic subformulas with the list algorithms of :mod:`repro.core.ops`, the
table joins of :mod:`repro.core.tables`, the freeze joins of
:mod:`repro.core.value_tables`, and recursive descent for the level modal
operators (paper §3, extended to >2-level hierarchies as sketched there).

Two evaluation modes (DESIGN.md §2):

* ``join_mode="inner"`` (default) — the paper's §3.2 algorithm verbatim.
* ``join_mode="outer"`` — definitional-semantics mode, matching
  :mod:`repro.core.semantics` exactly on supported formulas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.core import extensions, ops, planner as planning, resilience, trace
from repro.core.cache import EvaluationCache
from repro.core.explain import describe_node
from repro.core.simlist import SimilarityList, SimilarityValue
from repro.core.tables import INNER, OUTER, SimilarityTable, TableRow
from repro.core.value_tables import build_value_table, freeze_join
from repro.errors import (
    BudgetExceededError,
    HTLTypeError,
    UnsupportedFormulaError,
)
from repro.htl import ast
from repro.htl.classify import (
    FormulaClass,
    is_non_temporal,
    skeleton_class,
)
from repro.htl.variables import free_attr_vars, free_object_vars, is_closed
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode

# The engine mirrors the picture system's attribute-variable validation
# when it substitutes a schema table for a skipped join operand, so a
# malformed atom raises the same error whether or not it was skipped.
from repro.pictures.retrieval import (
    PictureRetrievalSystem,
    _check_attr_var_usage,
)
from repro.pictures.scoring import exists_pool, max_similarity


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the retrieval engine.

    ``until_threshold`` is the minimum fractional similarity the left
    operand of ``until`` must keep (paper §2.5).  ``join_mode`` selects the
    paper's inner join or the definitional outer join.  ``prune_atoms``
    forwards to the picture system's relevant-evaluation pruning.
    ``naive_atoms`` forces the picture system's naive full-scan path for
    every atom table (the index-driven path is the default; the flag is
    the escape hatch and the oracle's configuration, see DESIGN.md §7).
    ``plan`` enables the cost-based query planner (DESIGN.md §13):
    statistics-driven join evaluation order with inner-join operand
    short-circuits, per-atom indexed-vs-naive strategy choice, and plan
    caching with adaptive re-planning.  Plans never change results —
    ``plan=False`` restores the structural evaluation order exactly.
    """

    until_threshold: float = ops.DEFAULT_UNTIL_THRESHOLD
    join_mode: str = INNER
    prune_atoms: bool = False
    allow_extensions: bool = False
    naive_atoms: bool = False
    plan: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.until_threshold <= 1.0:
            raise HTLTypeError(
                f"until threshold must be in (0, 1], got {self.until_threshold}"
            )
        if self.join_mode not in (INNER, OUTER):
            raise HTLTypeError(f"unknown join mode {self.join_mode!r}")


@dataclass
class _SequenceContext:
    """One proper sequence under evaluation.

    ``owner`` is the hierarchy node whose level-``level`` descendants form
    ``nodes``; when set, the picture-retrieval system is fetched from the
    node's per-level cache instead of being rebuilt per call.  ``scope`` is
    the stable identity of this sequence for the evaluation cache (None
    disables memoization, e.g. for call-specific atomic lists).
    """

    video: Video
    level: int
    nodes: Sequence[VideoNode]
    atomics: Callable[[str, int], Optional[SimilarityList]]
    pictures: Optional[PictureRetrievalSystem] = None
    universe: Tuple[str, ...] = ()
    owner: Optional[VideoNode] = None
    scope: Optional[Tuple[Any, ...]] = None
    #: The compiled query plan steering this evaluation (None: structural
    #: order).  Shared down level-operator descents.
    plan: Optional[planning.QueryPlan] = None

    def ensure_pictures(self) -> PictureRetrievalSystem:
        if self.pictures is None:
            if self.owner is not None:
                self.pictures = self.owner.pictures_at_level(self.level)
            else:
                segments = [node.metadata for node in self.nodes]
                self.pictures = PictureRetrievalSystem(segments)
        return self.pictures


class RetrievalEngine:
    """Computes similarity lists for extended conjunctive HTL formulas.

    Pass an :class:`~repro.core.cache.EvaluationCache` to memoize
    subformula similarity tables within and across queries and whole-query
    similarity lists across queries.  Caching applies only to evaluations
    resolvable from a :class:`~repro.model.database.VideoDatabase` (whose
    generation counter drives invalidation); calls supplying ad-hoc
    ``atomic_lists`` bypass the cache entirely.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        cache: Optional[EvaluationCache] = None,
        planner: Optional[planning.Planner] = None,
    ):
        self.config = config or EngineConfig()
        self.cache = cache
        if planner is None and self.config.plan:
            planner = planning.Planner()
        self.planner = planner

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate_video(
        self,
        formula: ast.Formula,
        video: Video,
        level: int = 2,
        database: Optional[VideoDatabase] = None,
        atomic_lists: Optional[Dict[str, SimilarityList]] = None,
    ) -> SimilarityList:
        """Similarity list of a closed formula over the segments at a level.

        ``level=2`` (children of the root) is where §3 asserts conjunctive
        formulas; pass ``level=1`` to assert at the root, the convention for
        full hierarchical queries with level modal operators.

        ``atomic_lists`` resolves :class:`~repro.htl.ast.AtomicRef` by name
        for this call; ``database`` resolves the rest via its registry.
        """
        recorder = trace.current()
        if recorder is None:
            return self._evaluate_video(
                formula, video, level, database, atomic_lists
            )
        with recorder.span(
            trace.KIND_EVALUATE,
            f"evaluate {video.name}",
            video=video.name,
            level=level,
        ):
            return self._evaluate_video(
                formula, video, level, database, atomic_lists
            )

    def trace_video(
        self,
        formula: ast.Formula,
        video: Video,
        level: int = 2,
        database: Optional[VideoDatabase] = None,
        atomic_lists: Optional[Dict[str, SimilarityList]] = None,
        recorder: Optional[trace.TraceRecorder] = None,
    ) -> Tuple[SimilarityList, trace.Span]:
        """Evaluate one video and return ``(similarity list, root span)``.

        The traces-on-request entry point (DESIGN.md §10): installs a
        recorder (a fresh one unless given), evaluates exactly like
        :meth:`evaluate_video`, and hands back the span tree — one span
        per subformula node, named with its ``explain`` plan description.
        """
        active = recorder if recorder is not None else trace.TraceRecorder()
        with trace.recording(active):
            sim = self.evaluate_video(
                formula,
                video,
                level=level,
                database=database,
                atomic_lists=atomic_lists,
            )
        return sim, active.roots[-1]

    def _evaluate_video(
        self,
        formula: ast.Formula,
        video: Video,
        level: int,
        database: Optional[VideoDatabase],
        atomic_lists: Optional[Dict[str, SimilarityList]],
    ) -> SimilarityList:
        self._validate(formula)
        cache = self.cache
        use_cache = (
            cache is not None and database is not None and atomic_lists is None
        )
        key: Optional[Tuple[Any, ...]] = None
        if use_cache:
            # Per-video sync: an ingest into one video must not evict
            # every other video's memoized tables and lists.
            cache.sync_video(video.name, database.video_generation(video.name))
            key = (
                "list",
                ast.structural_key(formula),
                video.name,
                level,
                self.config,
            )
            hit = cache.get_list(key)
            if hit is not None:
                trace.bump("cache-list-hit")
                return hit
            trace.bump("cache-list-miss")
        context = self._context(formula, video, level, database, atomic_lists)
        context.plan = self._plan_for(formula, context, database)
        if context.plan is None:
            result = self._table(formula, context).closed_list()
        else:
            started = time.perf_counter()
            result = self._table(formula, context).closed_list()
            self.planner.observe(
                context.plan, time.perf_counter() - started
            )
        if use_cache and key is not None:
            cache.put_list(key, result)
        return result

    def _plan_for(
        self,
        formula: ast.Formula,
        context: _SequenceContext,
        database: Optional[VideoDatabase],
    ) -> Optional[planning.QueryPlan]:
        """The query plan for this evaluation, or None for structural order.

        Planning is skipped when disabled (``plan=False``), when the
        naive-oracle configuration is forced (``naive_atoms``), and for
        formulas with no picture atoms (pure registered-list queries have
        no index statistics to plan from).  A failing plan build is a
        perf event, never an error: the evaluation falls back to
        structural order (budget exhaustion still propagates — planning
        runs inside the query's deadline like everything else).
        """
        planner = self.planner
        if (
            planner is None
            or not self.config.plan
            or self.config.naive_atoms
            or not planning.has_picture_atoms(formula)
        ):
            return None
        try:
            pictures = context.ensure_pictures()
            return planner.plan_for(
                formula,
                pictures,
                context.level,
                self.config,
                generation=(
                    database.video_generation(context.video.name)
                    if database is not None
                    else None
                ),
                video=context.video.name,
            )
        except BudgetExceededError:
            raise
        except Exception:
            trace.bump(planning.PLAN_FAILED)
            return None

    def evaluate_at_root(
        self,
        formula: ast.Formula,
        video: Video,
        database: Optional[VideoDatabase] = None,
        atomic_lists: Optional[Dict[str, SimilarityList]] = None,
    ) -> SimilarityValue:
        """Similarity value of the whole video (paper §2.3: satisfaction at
        the root in the one-element sequence)."""
        sim = self.evaluate_video(
            formula, video, level=1, database=database, atomic_lists=atomic_lists
        )
        return sim.value_at(1)

    def combine_lists(
        self, formula: ast.Formula, lists: Dict[str, SimilarityList]
    ) -> SimilarityList:
        """Evaluate a type (1) formula directly over named atomic lists.

        This is the experiment harness entry point: the paper's §4 setup
        feeds precomputed similarity tables for the atomic predicates (as
        ``AtomicRef`` names) straight into the list algorithms, with no
        video metadata involved.
        """
        self._validate(formula)
        context = _SequenceContext(
            video=_DUMMY_VIDEO,
            level=2,
            nodes=(),
            atomics=lambda name, __level: lists.get(name),
        )
        return self._table(formula, context).closed_list()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, formula: ast.Formula) -> None:
        if not is_closed(formula):
            raise HTLTypeError(
                "queries must be closed formulas (bind every variable with "
                "exists or the freeze operator)"
            )
        actual = skeleton_class(formula)
        if actual > FormulaClass.EXTENDED_CONJUNCTIVE:
            if self.config.allow_extensions:
                self._validate_extended_language(formula)
                return
            raise UnsupportedFormulaError(
                "the retrieval algorithms support extended conjunctive "
                f"formulas; this one is {actual.name} "
                "(EngineConfig(allow_extensions=True) admits disjunction, "
                "'always' and free-position quantifiers)"
            )

    def _validate_extended_language(self, formula: ast.Formula) -> None:
        """Full-language mode: everything except ¬ over temporal scope."""
        if is_non_temporal(formula):
            return
        if isinstance(formula, ast.Not):
            raise UnsupportedFormulaError(
                "negation over temporal subformulas has no similarity "
                "semantics (paper §2.5 defines none); restructure the query"
            )
        for child in formula.children():
            self._validate_extended_language(child)

    def _context(
        self,
        formula: ast.Formula,
        video: Video,
        level: int,
        database: Optional[VideoDatabase],
        atomic_lists: Optional[Dict[str, SimilarityList]],
    ) -> _SequenceContext:
        def resolve(name: str, at_level: int) -> Optional[SimilarityList]:
            if atomic_lists is not None and name in atomic_lists:
                return atomic_lists[name]
            if database is not None:
                return database.atomic_list(name, video.name, at_level)
            return None

        nodes = video.nodes_at_level(level)
        cacheable = (
            self.cache is not None
            and database is not None
            and atomic_lists is None
        )
        return _SequenceContext(
            video=video,
            level=level,
            nodes=nodes,
            atomics=resolve,
            universe=tuple(exists_pool(video.object_universe())),
            owner=video.root,
            scope=(video.name, level) if cacheable else None,
        )

    def _table(
        self, formula: ast.Formula, context: _SequenceContext
    ) -> SimilarityTable:
        """Similarity table of a subformula, memoized when a cache is set.

        The memo key is the subformula's structural key plus the sequence
        scope and the engine configuration, so a subformula shared between
        two conjuncts (or between two queries over the same video)
        evaluates once.  Tables are immutable once built — every combining
        operation constructs fresh tables — so sharing is safe.
        """
        budget = resilience.current_budget()
        if budget is not None:
            # Each subformula table costs one cooperative step — so pure
            # list-algebra queries (registered atomics) are visible to the
            # step budget too — plus a forced deadline check to stay
            # responsive between the fine-grained charges of the hot loops.
            budget.charge(1, site="engine-table")
            budget.checkpoint(site="engine-table")
        recorder = trace.current()
        if recorder is None:
            return self._table_memo(formula, context)
        with recorder.span(trace.KIND_SUBFORMULA, describe_node(formula)):
            return self._table_memo(formula, context)

    def _table_memo(
        self, formula: ast.Formula, context: _SequenceContext
    ) -> SimilarityTable:
        cache = self.cache
        if cache is None or context.scope is None:
            return self._compute_table(formula, context)
        key = (
            "table",
            ast.structural_key(formula),
            context.scope,
            self.config,
        )
        cached = cache.get_table(key)
        if cached is not None:
            trace.bump("cache-table-hit")
            return cached
        trace.bump("cache-table-miss")
        table = self._compute_table(formula, context)
        cache.put_table(key, table)
        return table

    def _compute_table(
        self, formula: ast.Formula, context: _SequenceContext
    ) -> SimilarityTable:
        if isinstance(formula, ast.AtomicRef):
            return self._atomic_table(formula, context)
        if is_non_temporal(formula):
            return self._atom_table(formula, context)
        if isinstance(formula, ast.And):
            left, right = self._join_operands(formula, context)
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "and-merge"
            ):
                return left.combine(
                    right,
                    ops.and_lists,
                    mode=self.config.join_mode,
                    universe=context.universe,
                )
        if isinstance(formula, ast.Until):
            left, right = self._join_operands(formula, context)
            threshold = self.config.until_threshold

            def until_op(
                left_list: SimilarityList, right_list: SimilarityList
            ) -> SimilarityList:
                return ops.until_lists(left_list, right_list, threshold)

            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "until-merge"
            ):
                return left.combine(
                    right,
                    until_op,
                    mode=self.config.join_mode,
                    universe=context.universe,
                )
        if isinstance(formula, ast.Or):
            if not self.config.allow_extensions:
                raise UnsupportedFormulaError(
                    "disjunction over temporal subformulas needs "
                    "EngineConfig(allow_extensions=True)"
                )
            left = self._table(formula.left, context)
            right = self._table(formula.right, context)
            # ∨ takes the best disjunct, so an evaluation missing on one
            # side keeps the other side's value: always an outer join.
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "or-merge"
            ):
                return left.combine(
                    right,
                    extensions.or_lists,
                    mode=OUTER,
                    universe=context.universe,
                )
        if isinstance(formula, ast.Next):
            table = self._table(formula.sub, context)
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "next-shift"
            ):
                return table.map_lists(ops.next_list)
        if isinstance(formula, ast.Eventually):
            table = self._table(formula.sub, context)
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "eventually-scan"
            ):
                return table.map_lists(ops.eventually_list)
        if isinstance(formula, ast.Always):
            axis_end = len(context.nodes)
            table = self._table(formula.sub, context)
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "always-scan"
            ):
                return table.map_lists(
                    lambda sim: ops.always_list(sim, axis_end)
                )
        if isinstance(formula, ast.Exists):
            table = self._table(formula.sub, context)
            bound = [name for name in formula.vars if name in table.object_vars]
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "exists-projection"
            ):
                return table.project_exists(bound)
        if isinstance(formula, ast.Freeze):
            body = self._table(formula.sub, context)
            segments = [node.metadata for node in context.nodes]
            value_table = build_value_table(formula.func, segments)
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "freeze-join"
            ):
                return freeze_join(body, formula.var, value_table)
        if isinstance(formula, (ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel)):
            return self._level_table(formula, context)
        raise UnsupportedFormulaError(
            f"cannot evaluate {type(formula).__name__} here"
        )

    # -- planned join evaluation ------------------------------------------
    def _join_operands(
        self,
        formula: Union[ast.And, ast.Until],
        context: _SequenceContext,
    ) -> Tuple[SimilarityTable, SimilarityTable]:
        """Both operand tables of an ∧ / until node, in (left, right) order.

        With a plan active the *evaluation* order follows the plan's
        per-node decision (cheapest-and-most-selective-first), and under
        the paper's inner join a row-free first operand short-circuits
        the second: a zero-row table annihilates the inner join whatever
        the partner holds, so the partner is replaced by an equivalent
        zero-row schema table instead of being evaluated (DESIGN.md §13).
        The formula tree itself is never reordered — conjunct grouping is
        semantically significant under the inner join — so the returned
        pair is always (left table, right table).
        """
        plan = context.plan
        if plan is not None and plan.right_first(formula):
            first = self._table(formula.right, context)
            second = self._operand(formula.left, first, context)
            return second, first
        first = self._table(formula.left, context)
        second = self._operand(formula.right, first, context)
        return first, second

    def _operand(
        self,
        formula: ast.Formula,
        partner: SimilarityTable,
        context: _SequenceContext,
    ) -> SimilarityTable:
        """One join operand; short-circuited when the partner decided it."""
        if (
            context.plan is not None
            and self.config.join_mode == INNER
            and not partner.rows
        ):
            schema = self._schema_table(formula, context)
            if schema is not None:
                if self.planner is not None:
                    self.planner.record_skip()
                else:  # plan supplied via context without a planner
                    trace.bump(planning.PLAN_SKIPPED_SUBFORMULA)
                return schema
        return self._table(formula, context)

    def _schema_table(
        self, formula: ast.Formula, context: _SequenceContext
    ) -> Optional[SimilarityTable]:
        """A zero-row table with exactly the columns and maximum that real
        evaluation of ``formula`` would produce — or None when that cannot
        be derived without evaluating.

        Substituting it for a skipped inner-join operand is exact:
        ``combine`` computes output columns and maximum from both
        operands' columns and maxima alone, and with zero rows on the
        partner side the row loop emits nothing either way.  Malformed
        atoms still raise — attribute-variable misuse is validated here
        exactly as the picture system would — and anything this method
        cannot certify (unregistered refs, freeze joins, level descents)
        returns None, routing the operand to real evaluation.
        """
        if isinstance(formula, ast.AtomicRef):
            resolved = context.atomics(formula.name, context.level)
            if resolved is None:
                return None
            return SimilarityTable((), (), [], resolved.maximum)
        if is_non_temporal(formula):
            if any(
                isinstance(node, ast.AtomicRef) for node in formula.walk()
            ):
                if isinstance(formula, ast.And):
                    return self._schema_join(formula, ops.and_lists, context)
                return None
            _check_attr_var_usage(formula)
            try:
                maximum = max_similarity(formula)
            except Exception:
                return None
            return SimilarityTable(
                sorted(free_object_vars(formula)),
                sorted(free_attr_vars(formula)),
                [],
                maximum,
            )
        if isinstance(formula, ast.And):
            return self._schema_join(formula, ops.and_lists, context)
        if isinstance(formula, ast.Until):
            threshold = self.config.until_threshold
            return self._schema_join(
                formula,
                lambda left, right: ops.until_lists(left, right, threshold),
                context,
            )
        if isinstance(formula, ast.Or):
            left = self._schema_table(formula.left, context)
            right = self._schema_table(formula.right, context)
            if left is None or right is None:
                return None
            return left.combine(
                right, extensions.or_lists, mode=OUTER, universe=context.universe
            )
        if isinstance(formula, ast.Next):
            sub = self._schema_table(formula.sub, context)
            return None if sub is None else sub.map_lists(ops.next_list)
        if isinstance(formula, ast.Eventually):
            sub = self._schema_table(formula.sub, context)
            return None if sub is None else sub.map_lists(ops.eventually_list)
        if isinstance(formula, ast.Always):
            sub = self._schema_table(formula.sub, context)
            if sub is None:
                return None
            axis_end = len(context.nodes)
            return sub.map_lists(lambda sim: ops.always_list(sim, axis_end))
        if isinstance(formula, ast.Exists):
            sub = self._schema_table(formula.sub, context)
            if sub is None:
                return None
            bound = [name for name in formula.vars if name in sub.object_vars]
            return sub.project_exists(bound)
        return None

    def _schema_join(
        self,
        formula: Union[ast.And, ast.Until],
        op: Callable[[SimilarityList, SimilarityList], SimilarityList],
        context: _SequenceContext,
    ) -> Optional[SimilarityTable]:
        left = self._schema_table(formula.left, context)
        right = self._schema_table(formula.right, context)
        if left is None or right is None:
            return None
        return left.combine(
            right, op, mode=self.config.join_mode, universe=context.universe
        )

    # -- atoms ------------------------------------------------------------
    def _atomic_table(
        self, formula: ast.AtomicRef, context: _SequenceContext
    ) -> SimilarityTable:
        resolved = context.atomics(formula.name, context.level)
        if resolved is None:
            raise UnsupportedFormulaError(
                f"atomic predicate {formula.name!r} has no similarity list "
                f"registered for video {context.video.name!r} at level "
                f"{context.level}"
            )
        return SimilarityTable.closed(resolved)

    def _atom_table(
        self, formula: ast.Formula, context: _SequenceContext
    ) -> SimilarityTable:
        has_refs = any(
            isinstance(node, ast.AtomicRef) for node in formula.walk()
        )
        if has_refs:
            if isinstance(formula, ast.And):
                left, right = self._join_operands(formula, context)
                return left.combine(
                    right,
                    ops.and_lists,
                    mode=self.config.join_mode,
                    universe=context.universe,
                )
            raise UnsupportedFormulaError(
                "atomic references may only be combined with other "
                "conditions through conjunction; found one under "
                f"{type(formula).__name__}"
            )
        pictures = context.ensure_pictures()
        # Per-atom strategy: the plan's cost-based indexed-vs-naive choice
        # overrides the blanket config switch (both paths are proven to
        # build identical tables, so this is perf-only).
        use_index = not self.config.naive_atoms
        if context.plan is not None:
            choice = context.plan.atom_use_index(ast.structural_key(formula))
            if choice is not None:
                use_index = choice
        return pictures.similarity_table(
                formula,
                universe=context.universe or None,
                prune=self.config.prune_atoms,
                use_index=use_index,
            )

    # -- level modal operators ------------------------------------------------
    def _level_table(
        self,
        formula: Union[ast.AtNextLevel, ast.AtLevel, ast.AtNamedLevel],
        context: _SequenceContext,
    ) -> SimilarityTable:
        if isinstance(formula, ast.AtNextLevel):
            target = context.level + 1
        elif isinstance(formula, ast.AtLevel):
            target = formula.level
        else:
            target = context.video.level_of(formula.level_name)
        if target < context.level:
            raise UnsupportedFormulaError(
                f"level operator targets level {target}, above the current "
                f"level {context.level}"
            )
        if target > context.video.n_levels:
            raise UnsupportedFormulaError(
                f"level operator targets level {target}, but video "
                f"{context.video.name!r} has {context.video.n_levels} levels"
            )

        accumulator: Dict[
            Tuple[Tuple[str, ...], tuple], Dict[int, float]
        ] = {}
        columns: Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]] = None
        maximum: Optional[float] = None
        for position, node in enumerate(context.nodes, start=1):
            descendants = node.descendants_at_level(target)
            child_context = _SequenceContext(
                video=context.video,
                level=target,
                nodes=descendants,
                atomics=context.atomics,
                universe=context.universe,
                owner=node,
                scope=(
                    context.scope + (position, target)
                    if context.scope is not None
                    else None
                ),
                plan=context.plan,
            )
            child_table = self._table(formula.sub, child_context)
            maximum = child_table.maximum
            columns = (child_table.object_vars, child_table.attr_vars)
            if not descendants:
                continue
            for row in child_table.rows:
                value = row.sim.actual_at(1)
                if value <= 0:
                    continue
                key = (row.objects, row.ranges)
                accumulator.setdefault(key, {})[position] = value
        if maximum is None or columns is None:
            # Empty outer sequence: no way to learn the child maximum from
            # data, so compute it structurally.
            return SimilarityTable.empty(
                _structural_maximum(formula.sub, context)
            )
        rows = [
            TableRow(
                objects,
                ranges,
                SimilarityList.from_segment_values(values, maximum),
            )
            for (objects, ranges), values in accumulator.items()
        ]
        rows = [row for row in rows if row.sim]
        return SimilarityTable(columns[0], columns[1], rows, maximum)


def _structural_maximum(
    formula: ast.Formula, context: _SequenceContext
) -> float:
    """Maximum similarity computed from the formula alone."""
    if isinstance(formula, ast.AtomicRef):
        resolved = context.atomics(formula.name, context.level)
        if resolved is None:
            raise UnsupportedFormulaError(
                f"atomic predicate {formula.name!r} has no registered list"
            )
        return resolved.maximum
    if is_non_temporal(formula):
        return max_similarity(formula)
    if isinstance(formula, ast.And):
        return _structural_maximum(formula.left, context) + _structural_maximum(
            formula.right, context
        )
    if isinstance(formula, ast.Until):
        return _structural_maximum(formula.right, context)
    if isinstance(formula, ast.Or):
        return max(
            _structural_maximum(formula.left, context),
            _structural_maximum(formula.right, context),
        )
    if isinstance(
        formula,
        (
            ast.Next,
            ast.Eventually,
            ast.Always,
            ast.Exists,
            ast.Freeze,
            ast.AtNextLevel,
            ast.AtLevel,
            ast.AtNamedLevel,
        ),
    ):
        return _structural_maximum(formula.sub, context)
    raise UnsupportedFormulaError(
        f"cannot compute a maximum for {type(formula).__name__}"
    )


def actual_upper_bound(
    formula: ast.Formula,
    video: Video,
    level: int = 2,
    database: Optional[VideoDatabase] = None,
) -> float:
    """An admissible upper bound on the actual similarity any segment of
    ``video`` can reach for ``formula`` asserted at ``level``.

    Structural recursion mirroring the §2.5 combination rules, without
    evaluating anything: non-temporal atoms are bounded by their structural
    maximum ``m`` (``a ≤ m`` always), registered atomic predicates by the
    largest actual value on their similarity list — the cheap per-video
    evidence that lets ``top_k_across_videos`` skip videos that cannot
    crack the current k-th score.  Raises
    :class:`~repro.errors.UnsupportedFormulaError` when no finite bound can
    be derived (e.g. an unregistered atomic reference); callers should
    treat that as "cannot prune".
    """
    if isinstance(formula, ast.AtomicRef):
        best = (
            database.max_atomic_actual(formula.name, video.name, level)
            if database is not None
            else None
        )
        if best is None:
            raise UnsupportedFormulaError(
                f"atomic predicate {formula.name!r} has no similarity list "
                f"registered for video {video.name!r} at level {level}"
            )
        return best
    if isinstance(formula, ast.And):
        return actual_upper_bound(
            formula.left, video, level, database
        ) + actual_upper_bound(formula.right, video, level, database)
    if isinstance(formula, ast.Until):
        return actual_upper_bound(formula.right, video, level, database)
    if isinstance(formula, ast.Or):
        return max(
            actual_upper_bound(formula.left, video, level, database),
            actual_upper_bound(formula.right, video, level, database),
        )
    if is_non_temporal(formula):
        return max_similarity(formula)
    if isinstance(
        formula, (ast.Next, ast.Eventually, ast.Always, ast.Exists, ast.Freeze)
    ):
        return actual_upper_bound(formula.sub, video, level, database)
    if isinstance(formula, ast.AtNextLevel):
        return actual_upper_bound(formula.sub, video, level + 1, database)
    if isinstance(formula, ast.AtLevel):
        return actual_upper_bound(formula.sub, video, formula.level, database)
    if isinstance(formula, ast.AtNamedLevel):
        return actual_upper_bound(
            formula.sub, video, video.level_of(formula.level_name), database
        )
    raise UnsupportedFormulaError(
        f"cannot bound {type(formula).__name__}"
    )


def _make_dummy_video() -> Video:
    """A placeholder video for :meth:`RetrievalEngine.combine_lists`."""
    root = VideoNode()
    return Video(name="<lists>", root=root, level_names={1: "video"})


_DUMMY_VIDEO = _make_dummy_video()
