"""Memoization for the retrieval engine — the multi-video fast path.

The engine's structural recursion recomputes every subformula's similarity
table from scratch on each :meth:`~repro.core.engine.RetrievalEngine.
evaluate_video` call, and a multi-video ``top_k_across_videos`` repeats the
whole derivation per video per query.  Sistla's follow-up work on sequence
databases and the lazy neuro-symbolic evaluators make the same observation:
most of that work is shared, so cache it.

:class:`EvaluationCache` memoizes two things:

* **similarity tables of subformulas** — keyed by the subformula's stable
  structural key (:func:`repro.htl.ast.structural_key`), the evaluation
  scope (video, level, and the position path for level-operator descents)
  and the engine configuration.  Shared subformulas inside one query, and
  across queries over the same video, evaluate once.
* **whole-query similarity lists** — keyed by formula, video, level and
  configuration, so a repeated query over an unchanged database is a pure
  lookup.

Invalidation is by *generation*: :class:`~repro.model.database.
VideoDatabase` bumps a counter on every mutation (``add`` /
``register_atomic``), and the cache drops everything when it observes a new
generation via :meth:`sync`.  The cache therefore serves one database at a
time; point a fresh cache at a second database rather than alternating.

The cache is thread-safe — ``top_k_across_videos(parallelism=...)`` shares
one instance across its worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from repro.core.simlist import SimilarityList
from repro.core.tables import SimilarityTable

#: Default capacity bounds (entries, not bytes).  Subformula tables are
#: small and numerous; whole-query lists are fewer and larger.
DEFAULT_MAX_TABLES = 4096
DEFAULT_MAX_LISTS = 1024
#: Compiled query plans are tiny (decision maps over structural keys).
DEFAULT_MAX_PLANS = 512


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache effectiveness counters."""

    table_hits: int
    table_misses: int
    list_hits: int
    list_misses: int
    invalidations: int
    table_entries: int
    list_entries: int

    @property
    def hits(self) -> int:
        return self.table_hits + self.list_hits

    @property
    def misses(self) -> int:
        return self.table_misses + self.list_misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EvaluationCache:
    """Bounded, generation-invalidated memo for tables and lists.

    Eviction is FIFO (oldest insertion first) — the access pattern is
    "one query's subformulas, then the next query's", where recency
    tracking buys little over insertion order.
    """

    def __init__(
        self,
        max_tables: int = DEFAULT_MAX_TABLES,
        max_lists: int = DEFAULT_MAX_LISTS,
    ):
        self._lock = threading.Lock()
        self._generation: Optional[int] = None
        self._video_generations: Dict[str, int] = {}
        self._tables: Dict[Hashable, SimilarityTable] = {}
        self._lists: Dict[Hashable, SimilarityList] = {}
        self.max_tables = max_tables
        self.max_lists = max_lists
        self._table_hits = 0
        self._table_misses = 0
        self._list_hits = 0
        self._list_misses = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def sync(self, generation: int) -> None:
        """Observe the database generation; drop everything on a change.

        The coarse legacy protocol, kept for whole-database swaps.  The
        engine's per-video path (:meth:`sync_video`) makes an ingest of
        one video invisible to every other video's memoized entries.
        """
        with self._lock:
            if self._generation is None:
                self._generation = generation
            elif self._generation != generation:
                self._tables.clear()
                self._lists.clear()
                self._video_generations.clear()
                self._invalidations += 1
                self._generation = generation

    def sync_video(self, video_id: str, stamp: int) -> None:
        """Observe one video's generation stamp; on a change drop only
        that video's entries.

        Stamps are monotonic per video (:meth:`repro.model.database.
        VideoDatabase.video_generation`), but the cache only compares for
        inequality, so it also tolerates a database swap that rewinds a
        stamp.  Entries of other videos stay warm — the fix for the
        all-or-nothing invalidation that made any append discard every
        memoized table.
        """
        with self._lock:
            known = self._video_generations.get(video_id)
            if known is None:
                self._video_generations[video_id] = stamp
            elif known != stamp:
                self._video_generations[video_id] = stamp
                self._drop_video_locked(video_id)

    def invalidate_video(self, video_id: str) -> int:
        """Drop every entry scoped to one video; returns how many fell.

        Matching is by key shape: list keys carry the video name as a
        component, table keys carry it inside their ``(video, level)``
        scope tuple.  A key part merely *containing* the name deeper down
        can over-match — over-invalidation is safe, under-invalidation is
        not.
        """
        with self._lock:
            return self._drop_video_locked(video_id)

    def _drop_video_locked(self, video_id: str) -> int:
        def touches(key: Hashable) -> bool:
            if not isinstance(key, tuple):
                return False
            return any(
                part == video_id
                or (isinstance(part, tuple) and video_id in part)
                for part in key
            )

        stale_tables = [key for key in self._tables if touches(key)]
        stale_lists = [key for key in self._lists if touches(key)]
        for key in stale_tables:
            del self._tables[key]
        for key in stale_lists:
            del self._lists[key]
        if stale_tables or stale_lists:
            self._invalidations += 1
        return len(stale_tables) + len(stale_lists)

    def clear(self) -> None:
        """Drop all cached entries (counters are kept)."""
        with self._lock:
            self._tables.clear()
            self._lists.clear()
            self._video_generations.clear()

    # ------------------------------------------------------------------
    # tables (subformula memoization)
    # ------------------------------------------------------------------
    def get_table(self, key: Hashable) -> Optional[SimilarityTable]:
        with self._lock:
            table = self._tables.get(key)
            if table is None:
                self._table_misses += 1
            else:
                self._table_hits += 1
            return table

    def put_table(self, key: Hashable, table: SimilarityTable) -> None:
        with self._lock:
            while len(self._tables) >= self.max_tables:
                self._tables.pop(next(iter(self._tables)))
            self._tables[key] = table

    # ------------------------------------------------------------------
    # lists (whole-query memoization)
    # ------------------------------------------------------------------
    def get_list(self, key: Hashable) -> Optional[SimilarityList]:
        with self._lock:
            sim = self._lists.get(key)
            if sim is None:
                self._list_misses += 1
            else:
                self._list_hits += 1
            return sim

    def put_list(self, key: Hashable, sim: SimilarityList) -> None:
        with self._lock:
            while len(self._lists) >= self.max_lists:
                self._lists.pop(next(iter(self._lists)))
            self._lists[key] = sim

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                table_hits=self._table_hits,
                table_misses=self._table_misses,
                list_hits=self._list_hits,
                list_misses=self._list_misses,
                invalidations=self._invalidations,
                table_entries=len(self._tables),
                list_entries=len(self._lists),
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"EvaluationCache(tables={stats.table_entries}, "
            f"lists={stats.list_entries}, hits={stats.hits}, "
            f"misses={stats.misses})"
        )


@dataclass(frozen=True)
class PlanCacheStats:
    """A snapshot of plan-cache effectiveness counters."""

    hits: int
    misses: int
    invalidations: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Bounded, generation-invalidated memo for compiled query plans.

    Structurally a sibling of :class:`EvaluationCache` — same FIFO
    eviction, same generation-counter ``sync`` — but values are opaque
    (:class:`repro.core.planner.QueryPlan` objects; typed ``Any`` here so
    the cache layer never imports the planner) and entries can also be
    dropped *individually*: adaptive re-planning retires exactly the plan
    whose estimates drifted, keeping the rest warm.
    """

    def __init__(self, max_plans: int = DEFAULT_MAX_PLANS):
        self._lock = threading.Lock()
        self._generation: Optional[int] = None
        self._video_generations: Dict[str, int] = {}
        self._plans: Dict[Hashable, Any] = {}
        # Per-video tags: plan keys are statistics-signature keyed, so
        # one key may serve several videos whose indexes share a
        # signature.  A video's invalidation drops a tagged key only once
        # no other video still holds it.
        self._video_keys: Dict[str, set] = {}
        self._key_videos: Dict[Hashable, set] = {}
        self.max_plans = max_plans
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    def sync(self, generation: int) -> None:
        """Observe the database generation; drop everything on a change."""
        with self._lock:
            if self._generation is None:
                self._generation = generation
            elif self._generation != generation:
                self._clear_locked()
                self._invalidations += 1
                self._generation = generation

    def sync_video(self, video_id: str, stamp: int) -> None:
        """Observe one video's stamp; drop only its plans on a change.

        Signature-keyed plans cannot silently go stale (a changed index
        changes the signature, hence the key), so this is about memory
        and honest misses, not correctness: the retired keys are exactly
        the ones the mutated video can never hit again.
        """
        with self._lock:
            known = self._video_generations.get(video_id)
            if known is None:
                self._video_generations[video_id] = stamp
            elif known != stamp:
                self._video_generations[video_id] = stamp
                self._drop_video_locked(video_id)

    def invalidate_video(self, video_id: str) -> int:
        """Drop plans tagged (only) to one video; returns how many fell."""
        with self._lock:
            return self._drop_video_locked(video_id)

    def _drop_video_locked(self, video_id: str) -> int:
        dropped = 0
        for key in self._video_keys.pop(video_id, set()):
            holders = self._key_videos.get(key)
            if holders is None:
                continue
            holders.discard(video_id)
            if not holders:
                del self._key_videos[key]
                if self._plans.pop(key, None) is not None:
                    dropped += 1
        if dropped:
            self._invalidations += 1
        return dropped

    def _clear_locked(self) -> None:
        self._plans.clear()
        self._video_keys.clear()
        self._key_videos.clear()
        self._video_generations.clear()

    def _untag_locked(self, key: Hashable) -> None:
        for video_id in self._key_videos.pop(key, set()):
            keys = self._video_keys.get(video_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._video_keys[video_id]

    def clear(self) -> None:
        """Drop all cached plans (counters are kept)."""
        with self._lock:
            self._clear_locked()

    def invalidate(self, key: Hashable) -> bool:
        """Drop one plan (adaptive re-plan); True if it was cached."""
        with self._lock:
            if key in self._plans:
                del self._plans[key]
                self._untag_locked(key)
                self._invalidations += 1
                return True
            return False

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self._misses += 1
            else:
                self._hits += 1
            return plan

    def put(
        self, key: Hashable, plan: Any, video: Optional[str] = None
    ) -> None:
        with self._lock:
            while len(self._plans) >= self.max_plans:
                evicted = next(iter(self._plans))
                self._plans.pop(evicted)
                self._untag_locked(evicted)
            self._plans[key] = plan
            if video is not None:
                self._video_keys.setdefault(video, set()).add(key)
                self._key_videos.setdefault(key, set()).add(video)

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
                entries=len(self._plans),
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"PlanCache(entries={stats.entries}, hits={stats.hits}, "
            f"misses={stats.misses})"
        )
