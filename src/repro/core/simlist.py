"""Similarity values and similarity lists — the paper's central structures.

A *similarity value* is a pair ``(actual, maximum)`` with
``0 <= actual <= maximum``; the *fractional* similarity is
``actual / maximum`` and equals 1 on an exact match (paper §2.5).

A *similarity list* for a formula ``f`` over one video is a sequence of
entries ``([beg_id, end_id], (act_sim, max_sim))`` meaning every segment in
the interval has that similarity (paper §3.1).  Invariants maintained here:

* entries are sorted by interval begin and intervals are pairwise disjoint;
* only entries with strictly positive actual similarity are stored ("only
  ids with non-zero similarity value appear on the list");
* ``max_sim`` is identical across entries — it depends only on ``f``.

Adjacent entries carrying the same actual value are coalesced on
normalisation so a list has a canonical form, which makes equality of lists
meaningful in tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.intervals import Interval
from repro.errors import InvalidSimilarityError, SimilarityListInvariantError

#: Tolerance used when comparing floating-point similarity values.
SIM_EPS = 1e-9

#: When True, every constructed list runs the full O(n) invariant scan.
#: Off by default: the merge algorithms of :mod:`repro.core.ops` construct
#: a list per operator application, and re-validating inputs they produce
#: by construction dominated profile time on large workloads.  The test
#: suite switches it on globally (tests/conftest.py), so invariants stay
#: property-checked where it matters.
CHECK_INVARIANTS = False


def set_invariant_checks(enabled: bool) -> bool:
    """Toggle list invariant checking; returns the previous setting."""
    global CHECK_INVARIANTS
    previous = CHECK_INVARIANTS
    CHECK_INVARIANTS = bool(enabled)
    return previous


@dataclass(frozen=True)
class SimilarityValue:
    """The pair ``(actual, maximum)`` of paper §2.5."""

    actual: float
    maximum: float

    def __post_init__(self) -> None:
        if self.maximum <= 0:
            raise InvalidSimilarityError(
                f"maximum similarity must be positive, got {self.maximum}"
            )
        if self.actual < -SIM_EPS or self.actual > self.maximum + SIM_EPS:
            raise InvalidSimilarityError(
                f"actual similarity {self.actual} outside [0, {self.maximum}]"
            )

    @property
    def fraction(self) -> float:
        """The fractional similarity ``a / m``."""
        return self.actual / self.maximum

    def is_exact(self) -> bool:
        """True when the value denotes an exact match (``a == m``)."""
        return abs(self.actual - self.maximum) <= SIM_EPS


@dataclass(frozen=True)
class SimEntry:
    """One row of a similarity list: an interval plus its actual value.

    The shared ``max_sim`` lives on the list, not the entry.
    """

    interval: Interval
    actual: float

    @property
    def begin(self) -> int:
        return self.interval.begin

    @property
    def end(self) -> int:
        return self.interval.end


class SimilarityList:
    """Canonical similarity list for one formula over one video.

    Construct with :meth:`from_entries` (normalising) or
    :meth:`from_raw` (trusting, for the hot path of the merge algorithms).
    """

    __slots__ = ("_entries", "_maximum", "_begin_keys")

    def __init__(self, entries: Sequence[SimEntry], maximum: float):
        self._entries: Tuple[SimEntry, ...] = tuple(entries)
        self._maximum = float(maximum)
        self._begin_keys: Optional[List[int]] = None
        if CHECK_INVARIANTS:
            self._check_invariants()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(
        cls,
        entries: Iterable[Tuple[Tuple[int, int], float]],
        maximum: float,
    ) -> "SimilarityList":
        """Build from ``((begin, end), actual)`` pairs, normalising.

        Input may be unsorted; intervals must be disjoint.  Zero-valued
        entries are dropped and adjacent equal-valued entries coalesced.
        """
        raw = [
            SimEntry(Interval(int(b), int(e)), float(a))
            for (b, e), a in entries
        ]
        raw.sort(key=lambda entry: entry.begin)
        normalised: List[SimEntry] = []
        for entry in raw:
            if entry.actual <= SIM_EPS:
                continue
            if (
                normalised
                and normalised[-1].end + 1 == entry.begin
                and abs(normalised[-1].actual - entry.actual) <= SIM_EPS
            ):
                previous = normalised.pop()
                entry = SimEntry(
                    Interval(previous.begin, entry.end), previous.actual
                )
            normalised.append(entry)
        return cls(normalised, maximum)

    @classmethod
    def from_raw(
        cls, entries: Sequence[SimEntry], maximum: float
    ) -> "SimilarityList":
        """Build from already-normalised entries (invariant-checked only
        when :data:`CHECK_INVARIANTS` is on)."""
        return cls(entries, maximum)

    @classmethod
    def empty(cls, maximum: float) -> "SimilarityList":
        """A list with no positive-similarity segments."""
        return cls((), maximum)

    @classmethod
    def from_sorted_pieces(
        cls,
        pieces: Iterable[Tuple[int, int, float]],
        maximum: float,
    ) -> "SimilarityList":
        """Build from ``(begin, end, actual)`` runs already in begin order.

        The index-driven atom evaluator emits baseline runs over posting
        gaps interleaved with per-segment scores, in ascending id order;
        this constructor normalises (drops ≤ 0 runs, coalesces adjacent
        equal-valued runs) in one linear pass with no sort and no
        per-segment expansion.
        """
        normalised: List[SimEntry] = []
        # Accumulate the open run in locals; one SimEntry per *final* run
        # (a piece-per-segment input would otherwise allocate per piece).
        run_begin = run_end = 0
        run_actual = 0.0
        open_run = False
        for begin, end, actual in pieces:
            if actual <= SIM_EPS:
                continue
            if (
                open_run
                and run_end + 1 == begin
                and abs(run_actual - actual) <= SIM_EPS
            ):
                run_end = end
                continue
            if open_run:
                normalised.append(
                    SimEntry(Interval(run_begin, run_end), run_actual)
                )
            run_begin, run_end, run_actual = begin, end, float(actual)
            open_run = True
        if open_run:
            normalised.append(
                SimEntry(Interval(run_begin, run_end), run_actual)
            )
        return cls(normalised, maximum)

    @classmethod
    def from_segment_values(
        cls, values: Dict[int, float], maximum: float
    ) -> "SimilarityList":
        """Build from a ``{segment_id: actual}`` map (test oracle helper)."""
        entries: List[Tuple[Tuple[int, int], float]] = []
        for segment_id in sorted(values):
            actual = values[segment_id]
            if actual <= SIM_EPS:
                continue
            entries.append(((segment_id, segment_id), actual))
        return cls.from_entries(entries, maximum)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> "SimilarityList":
        """Run the full invariant scan now, regardless of the global gate.

        The resilience layer calls this at trust boundaries — e.g. before
        ``top_k_across_videos`` streams a worker-produced list into the
        shared heap — so a corrupted list surfaces as a typed
        :class:`~repro.errors.SimilarityListInvariantError` instead of a
        silently wrong ranking.  Returns ``self`` for chaining.
        """
        self._check_invariants()
        return self

    def _check_invariants(self) -> None:
        if self._maximum <= 0:
            raise SimilarityListInvariantError(
                f"list maximum must be positive, got {self._maximum}"
            )
        previous_end = 0
        for entry in self._entries:
            if entry.actual <= 0:
                raise SimilarityListInvariantError(
                    f"non-positive actual value {entry.actual} stored at "
                    f"{entry.interval}"
                )
            if entry.actual > self._maximum + SIM_EPS:
                raise SimilarityListInvariantError(
                    f"actual {entry.actual} exceeds list maximum {self._maximum}"
                )
            if entry.begin <= previous_end:
                raise SimilarityListInvariantError(
                    "entries must be sorted with disjoint intervals; "
                    f"interval starting at {entry.begin} follows end "
                    f"{previous_end}"
                )
            previous_end = entry.end

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    @property
    def maximum(self) -> float:
        """The shared ``max_sim`` of every entry (a function of the formula)."""
        return self._maximum

    @property
    def entries(self) -> Tuple[SimEntry, ...]:
        return self._entries

    def __len__(self) -> int:
        """Number of entries — the paper's ``length(L)``."""
        return len(self._entries)

    def __iter__(self) -> Iterator[SimEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimilarityList):
            return NotImplemented
        if abs(self._maximum - other._maximum) > SIM_EPS:
            return False
        if len(self._entries) != len(other._entries):
            return False
        return all(
            mine.interval == theirs.interval
            and abs(mine.actual - theirs.actual) <= SIM_EPS
            for mine, theirs in zip(self._entries, other._entries)
        )

    def __hash__(self) -> int:  # pragma: no cover - lists are not dict keys
        return hash((self._entries, self._maximum))

    def __repr__(self) -> str:
        body = ", ".join(
            f"[{entry.begin},{entry.end}]={entry.actual:g}"
            for entry in self._entries
        )
        return f"SimilarityList(max={self._maximum:g}; {body})"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def value_at(self, segment_id: int) -> SimilarityValue:
        """Similarity value at one segment (0 when the id is off-list)."""
        if self._begin_keys is None:
            self._begin_keys = [entry.begin for entry in self._entries]
        index = bisect.bisect_right(self._begin_keys, segment_id) - 1
        if index >= 0 and segment_id <= self._entries[index].end:
            return SimilarityValue(self._entries[index].actual, self._maximum)
        return SimilarityValue(0.0, self._maximum)

    def actual_at(self, segment_id: int) -> float:
        """Actual similarity at one segment (0 when off-list)."""
        return self.value_at(segment_id).actual

    def fraction_at(self, segment_id: int) -> float:
        """Fractional similarity at one segment."""
        return self.actual_at(segment_id) / self._maximum

    def segment_ids(self) -> Iterator[int]:
        """Iterate all ids carrying positive similarity, ascending."""
        for entry in self._entries:
            yield from entry.interval

    def to_segment_values(self) -> Dict[int, float]:
        """Expand into a ``{segment_id: actual}`` map (testing helper)."""
        return {
            segment_id: entry.actual
            for entry in self._entries
            for segment_id in entry.interval
        }

    def support_size(self) -> int:
        """Number of distinct segment ids with positive similarity."""
        return sum(len(entry.interval) for entry in self._entries)

    def last_id(self) -> int:
        """Largest id on the list, or 0 when the list is empty."""
        return self._entries[-1].end if self._entries else 0

    def restricted(self, lo: int, hi: int) -> "SimilarityList":
        """The sub-list covering only ids in ``[lo, hi]``."""
        clipped: List[SimEntry] = []
        for entry in self._entries:
            kept = entry.interval.clamp(lo, hi)
            if kept is not None:
                clipped.append(SimEntry(kept, entry.actual))
        return SimilarityList.from_raw(clipped, self._maximum)

    def with_maximum(self, maximum: float) -> "SimilarityList":
        """Same entries under a different maximum (used by ∃ / freeze)."""
        return SimilarityList.from_raw(self._entries, maximum)

    def scaled(self, factor: float) -> "SimilarityList":
        """Scale every actual value and the maximum by ``factor`` > 0."""
        if factor <= 0:
            raise InvalidSimilarityError(
                f"scale factor must be positive, got {factor}"
            )
        scaled_entries = [
            SimEntry(entry.interval, entry.actual * factor)
            for entry in self._entries
        ]
        return SimilarityList.from_raw(scaled_entries, self._maximum * factor)
