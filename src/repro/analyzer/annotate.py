"""The video analyzer: frames → shots → annotated two-level video.

This closes the Fig. 1 loop: the analyzer "generates the meta-data; this
may itself consist of systems for segmentation, editing of video data as
well as algorithms for analysis of the video".  Given a synthetic frame
stream and an annotation rule base (object appearances keyed by shot
label), it cut-detects the stream and produces the
:class:`~repro.model.hierarchy.Video` + metadata that the retrieval
systems consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analyzer.cutdetect import CutDetectorConfig, Shot, detect_cuts
from repro.analyzer.features import FrameStream
from repro.core import instrument, resilience
from repro.errors import ReproError
from repro.model.hierarchy import Video, flat_video
from repro.model.metadata import (
    ObjectInstance,
    Relationship,
    SegmentMetadata,
)
from repro.pictures.signature import average_histograms

#: An annotation rule: shot label → metadata fragments for that shot.
@dataclass
class AnnotationRule:
    objects: List[ObjectInstance] = field(default_factory=list)
    relationships: List[Relationship] = field(default_factory=list)
    attributes: Dict[str, object] = field(default_factory=dict)


class VideoAnalyzer:
    """Cut detection plus rule-driven annotation."""

    def __init__(
        self,
        config: CutDetectorConfig = CutDetectorConfig(),
        rules: Optional[Dict[str, AnnotationRule]] = None,
    ):
        self.config = config
        self.rules = rules or {}

    def segment(self, stream: FrameStream) -> List[Shot]:
        """Detected shots of the stream."""
        return detect_cuts(stream.frames, self.config)

    def dominant_label(self, stream: FrameStream, shot: Shot) -> str:
        """The ground-truth label covering most of a detected shot.

        Real systems would run recognition models here; the synthetic
        substitute reads the stream's ground truth, which exercises the
        same downstream paths (DESIGN.md §3).
        """
        best_label = ""
        best_overlap = 0
        starts = list(stream.boundaries) + [len(stream.frames)]
        for position, label in enumerate(stream.labels):
            true_first = starts[position]
            true_last = starts[position + 1] - 1
            overlap = min(shot.last, true_last) - max(shot.first, true_first) + 1
            if overlap > best_overlap:
                best_overlap = overlap
                best_label = label
        return best_label

    def signature_of(self, stream: FrameStream, shot: Shot) -> tuple:
        """The shot's content signature: its mass-normalised mean histogram.

        This is the ``signature-build`` fault site; callers that can
        degrade (``annotate``) catch the typed errors, direct callers see
        them.
        """
        resilience.fault(resilience.SITE_SIGNATURE_BUILD)
        return average_histograms(
            [
                frame.histogram
                for frame in stream.frames[shot.first : shot.last + 1]
            ]
        )

    def annotate(
        self,
        stream: FrameStream,
        name: str,
        root_attributes: Optional[Dict[str, object]] = None,
    ) -> Video:
        """Produce the annotated two-level video for a stream.

        Each shot carries its content signature (DESIGN.md §16) next to
        the rule-driven annotation metadata.  A failing signature build —
        a degenerate shot, or an injected ``signature-build`` fault —
        degrades that shot to annotation-only metadata (``signature=None``)
        and bumps the :data:`~repro.core.instrument.SIGNATURE_DEGRADED`
        counter rather than aborting the analysis: annotation retrieval
        must survive a broken feature extractor.
        """
        shots = self.segment(stream)
        segments: List[SegmentMetadata] = []
        for number, shot in enumerate(shots, start=1):
            label = self.dominant_label(stream, shot)
            rule = self.rules.get(label, AnnotationRule())
            attributes: Dict[str, object] = {
                "first_frame": shot.first,
                "last_frame": shot.last,
                "n_frames": len(shot),
            }
            if label:
                attributes["label"] = label
            attributes.update(rule.attributes)
            signature: Optional[tuple]
            try:
                signature = self.signature_of(stream, shot)
            except ReproError:
                instrument.count(instrument.SIGNATURE_DEGRADED)
                signature = None
            segments.append(
                SegmentMetadata(
                    attributes=attributes,
                    objects=[
                        ObjectInstance(
                            instance.object_id,
                            instance.type,
                            dict(instance.attributes),
                            instance.confidence,
                        )
                        for instance in rule.objects
                    ],
                    relationships=list(rule.relationships),
                    signature=signature,
                )
            )
        root_metadata = SegmentMetadata(attributes=root_attributes or {})
        return flat_video(
            name, segments, root_metadata=root_metadata, child_level_name="shot"
        )
