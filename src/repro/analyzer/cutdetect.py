"""Histogram-difference cut detection (paper refs [21, 11]).

Classic twin-threshold detector over consecutive-frame histogram
differences: a difference above ``hard_threshold`` declares a cut; an
adaptive variant also cuts where the difference exceeds
``adaptive_factor`` times the running average (catching low-contrast
cuts).  This is the "segmented into smaller sequences (called shots)
using a method called cut-detection" step of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analyzer.features import Frame, FrameStream, histogram_difference
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Shot:
    """A detected shot: frame index range ``[first, last]`` (0-based)."""

    first: int
    last: int

    def __len__(self) -> int:
        return self.last - self.first + 1


@dataclass(frozen=True)
class CutDetectorConfig:
    hard_threshold: float = 0.5
    adaptive_factor: float = 6.0
    window: int = 12
    min_shot_length: int = 2

    def __post_init__(self) -> None:
        if self.hard_threshold <= 0:
            raise WorkloadError("hard threshold must be positive")
        if self.window < 1:
            raise WorkloadError("window must be >= 1")
        if self.min_shot_length < 1:
            raise WorkloadError("min shot length must be >= 1")


def detect_cuts(
    frames: Sequence[Frame],
    config: CutDetectorConfig = CutDetectorConfig(),
) -> List[Shot]:
    """Segment a frame sequence into shots."""
    if not frames:
        return []
    boundaries = [0]
    recent: List[float] = []
    for index in range(1, len(frames)):
        difference = histogram_difference(frames[index - 1], frames[index])
        baseline = (
            sum(recent) / len(recent) if recent else 0.0
        )
        is_cut = difference >= config.hard_threshold or (
            len(recent) >= config.window // 2
            and difference >= config.adaptive_factor * max(baseline, 1e-6)
        )
        long_enough = index - boundaries[-1] >= config.min_shot_length
        if is_cut and long_enough:
            boundaries.append(index)
            recent = []
        else:
            recent.append(difference)
            if len(recent) > config.window:
                recent.pop(0)
    shots = []
    for position, first in enumerate(boundaries):
        last = (
            boundaries[position + 1] - 1
            if position + 1 < len(boundaries)
            else len(frames) - 1
        )
        shots.append(Shot(first, last))
    return shots


def boundary_accuracy(
    detected: Sequence[Shot], truth_boundaries: Sequence[int]
) -> "tuple[float, float]":
    """(recall, precision) of detected shot starts against ground truth."""
    detected_starts = {shot.first for shot in detected}
    truth = set(truth_boundaries)
    if not truth:
        return 1.0, 1.0
    hits = len(detected_starts & truth)
    recall = hits / len(truth)
    precision = hits / len(detected_starts) if detected_starts else 0.0
    return recall, precision


def detect_stream(
    stream: FrameStream, config: CutDetectorConfig = CutDetectorConfig()
) -> List[Shot]:
    """Convenience wrapper for synthetic streams."""
    return detect_cuts(stream.frames, config)
