"""Synthetic frame features for the cut-detection substrate.

The paper's pipeline segments video into shots "using a method called
cut-detection [21, 11]" over low-level frame features.  We have no video
files, so this module synthesises the same signal: a stream of per-frame
colour histograms where frames within one shot are small perturbations of
a shot signature, and shot boundaries jump to a fresh signature — exactly
the structure histogram-difference cut detectors rely on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError

#: Number of histogram bins (coarse colour quantisation, as in early
#: cut-detection work).
N_BINS = 16


@dataclass(frozen=True)
class Frame:
    """One synthetic frame: a normalised colour histogram."""

    histogram: tuple

    def __post_init__(self) -> None:
        if len(self.histogram) != N_BINS:
            raise WorkloadError(
                f"frames carry {N_BINS}-bin histograms, got "
                f"{len(self.histogram)}"
            )
        for position, bin_value in enumerate(self.histogram):
            if not isinstance(bin_value, (int, float)) or isinstance(
                bin_value, bool
            ):
                raise WorkloadError(
                    f"histogram bin {position} must be a number, got "
                    f"{bin_value!r}"
                )
            if not math.isfinite(bin_value):
                raise WorkloadError(
                    f"histogram bin {position} must be finite, got "
                    f"{bin_value!r}"
                )
            if bin_value < 0:
                raise WorkloadError(
                    f"histogram bin {position} must be non-negative, got "
                    f"{bin_value!r}"
                )


@dataclass(frozen=True)
class ShotSpec:
    """Ground truth for one synthetic shot."""

    length: int
    label: str = ""


@dataclass
class FrameStream:
    """A synthetic frame sequence with its ground-truth shot boundaries."""

    frames: List[Frame]
    boundaries: List[int]  # first frame index (0-based) of each shot
    labels: List[str]

    def __len__(self) -> int:
        return len(self.frames)


def _signature(rng: random.Random) -> List[float]:
    weights = [rng.random() ** 2 for __ in range(N_BINS)]
    total = sum(weights)
    if total <= 0.0:
        raise WorkloadError(
            "degenerate shot signature: weight vector sums to zero"
        )
    return [weight / total for weight in weights]


def _perturb(
    signature: Sequence[float], rng: random.Random, noise: float
) -> tuple:
    noisy = [
        max(bin_value + rng.uniform(-noise, noise), 0.0)
        for bin_value in signature
    ]
    total = sum(noisy) or 1.0
    return tuple(bin_value / total for bin_value in noisy)


def synthesize_stream(
    shots: Sequence[ShotSpec],
    noise: float = 0.01,
    seed: Optional[int] = None,
) -> FrameStream:
    """Generate frames for the given shots.

    ``noise`` is the within-shot histogram jitter; shot signatures are
    drawn independently, so boundary jumps dwarf the jitter.
    """
    if not shots:
        raise WorkloadError("a stream needs at least one shot")
    if any(shot.length < 1 for shot in shots):
        raise WorkloadError("every shot needs at least one frame")
    rng = random.Random(seed)
    frames: List[Frame] = []
    boundaries: List[int] = []
    labels: List[str] = []
    for shot in shots:
        signature = _signature(rng)
        boundaries.append(len(frames))
        labels.append(shot.label)
        for __ in range(shot.length):
            frames.append(Frame(_perturb(signature, rng, noise)))
    return FrameStream(frames=frames, boundaries=boundaries, labels=labels)


def histogram_difference(first: Frame, second: Frame) -> float:
    """L1 distance between histograms, in ``[0, 2]`` — the classic
    cut-detection dissimilarity.

    Both histograms must carry nonzero total weight: a zero-total
    histogram is not a colour distribution, and comparing against one
    yields a score that is NaN-free but meaningless (two blank frames
    would look "identical" to any query).  Such frames are rejected with
    a typed :class:`~repro.errors.WorkloadError` at the comparison site
    rather than silently scored.
    """
    for which, frame in (("first", first), ("second", second)):
        if sum(frame.histogram) <= 0.0:
            raise WorkloadError(
                f"{which} frame has a zero-total histogram; "
                "cannot compute a histogram difference"
            )
    return sum(
        abs(a - b) for a, b in zip(first.histogram, second.histogram)
    )
