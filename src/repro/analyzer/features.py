"""Synthetic frame features for the cut-detection substrate.

The paper's pipeline segments video into shots "using a method called
cut-detection [21, 11]" over low-level frame features.  We have no video
files, so this module synthesises the same signal: a stream of per-frame
colour histograms where frames within one shot are small perturbations of
a shot signature, and shot boundaries jump to a fresh signature — exactly
the structure histogram-difference cut detectors rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import WorkloadError

#: Number of histogram bins (coarse colour quantisation, as in early
#: cut-detection work).
N_BINS = 16


@dataclass(frozen=True)
class Frame:
    """One synthetic frame: a normalised colour histogram."""

    histogram: tuple

    def __post_init__(self) -> None:
        if len(self.histogram) != N_BINS:
            raise WorkloadError(
                f"frames carry {N_BINS}-bin histograms, got "
                f"{len(self.histogram)}"
            )


@dataclass(frozen=True)
class ShotSpec:
    """Ground truth for one synthetic shot."""

    length: int
    label: str = ""


@dataclass
class FrameStream:
    """A synthetic frame sequence with its ground-truth shot boundaries."""

    frames: List[Frame]
    boundaries: List[int]  # first frame index (0-based) of each shot
    labels: List[str]

    def __len__(self) -> int:
        return len(self.frames)


def _signature(rng: random.Random) -> List[float]:
    weights = [rng.random() ** 2 for __ in range(N_BINS)]
    total = sum(weights)
    return [weight / total for weight in weights]


def _perturb(
    signature: Sequence[float], rng: random.Random, noise: float
) -> tuple:
    noisy = [
        max(bin_value + rng.uniform(-noise, noise), 0.0)
        for bin_value in signature
    ]
    total = sum(noisy) or 1.0
    return tuple(bin_value / total for bin_value in noisy)


def synthesize_stream(
    shots: Sequence[ShotSpec],
    noise: float = 0.01,
    seed: Optional[int] = None,
) -> FrameStream:
    """Generate frames for the given shots.

    ``noise`` is the within-shot histogram jitter; shot signatures are
    drawn independently, so boundary jumps dwarf the jitter.
    """
    if not shots:
        raise WorkloadError("a stream needs at least one shot")
    if any(shot.length < 1 for shot in shots):
        raise WorkloadError("every shot needs at least one frame")
    rng = random.Random(seed)
    frames: List[Frame] = []
    boundaries: List[int] = []
    labels: List[str] = []
    for shot in shots:
        signature = _signature(rng)
        boundaries.append(len(frames))
        labels.append(shot.label)
        for __ in range(shot.length):
            frames.append(Frame(_perturb(signature, rng, noise)))
    return FrameStream(frames=frames, boundaries=boundaries, labels=labels)


def histogram_difference(first: Frame, second: Frame) -> float:
    """L1 distance between histograms, in ``[0, 2]`` — the classic
    cut-detection dissimilarity."""
    return sum(
        abs(a - b) for a, b in zip(first.histogram, second.histogram)
    )
