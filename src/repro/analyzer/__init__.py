"""Video analyzer substrate: synthetic features, cut detection, annotation."""

from repro.analyzer.annotate import AnnotationRule, VideoAnalyzer
from repro.analyzer.cutdetect import (
    CutDetectorConfig,
    Shot,
    boundary_accuracy,
    detect_cuts,
    detect_stream,
)
from repro.analyzer.features import (
    Frame,
    FrameStream,
    ShotSpec,
    histogram_difference,
    synthesize_stream,
)

__all__ = [
    "Frame",
    "FrameStream",
    "ShotSpec",
    "synthesize_stream",
    "histogram_difference",
    "Shot",
    "CutDetectorConfig",
    "detect_cuts",
    "detect_stream",
    "boundary_accuracy",
    "VideoAnalyzer",
    "AnnotationRule",
]
