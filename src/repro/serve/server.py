"""The long-lived threaded retrieval server (DESIGN.md §14).

One :class:`RetrievalServer` owns the whole request lifecycle::

    submit ──▶ admission control ──▶ queued ──▶ dispatched ──▶ running
       │            │                  │                         │
       ▼            ▼                  ▼                         ▼
   ServeRejected  ServeRejected      shed (evicted          completed /
   (closing)     (queue-full /       under pressure,        timed-out
                  backlog)           retry hint)

and enforces the serving layer's conservation law: **every admitted
request terminates in exactly one of** ``completed`` / ``timed-out`` /
``shed`` — racing resolvers (a finishing worker vs. the drain sweep)
are serialised by the ticket's first-wins :meth:`~repro.serve.request.
Ticket.resolve`, and the ledger counts only winning resolutions.

Dispatch is strict-priority with per-worker pinning: each pooled worker
runs its own thread against its own engine, pulls the
highest-priority queued ticket, re-derives the request's
:class:`~repro.core.resilience.QueryBudget` from its SLA deadline minus
time already queued, and executes under the existing resilience layer
(lenient partial results, degraded fallback chain, budget charging in
the hot loops).  A worker whose circuit breaker is open bounces work
back to the *front* of its class queue for a sibling; a request whose
attempts are exhausted degrades to the pool's typed partial result
rather than an opaque error.

Shutdown is a graceful drain: admission closes immediately, queued and
in-flight work gets ``drain_timeout_ms`` to finish, and everything
still unresolved at the deadline is swept ``timed-out`` — nothing is
silently dropped, which the chaos suite checks under injected faults
at every serve site.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core import instrument, resilience, trace
from repro.errors import (
    BudgetExceededError,
    ServeError,
    ServeRejected,
)
from repro.htl import ast, parse
from repro.serve.pool import EnginePool, PooledWorker
from repro.serve.queue import RequestQueue
from repro.serve.request import (
    STATUS_COMPLETED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    QueryRequest,
    ServeResult,
    Ticket,
)
from repro.serve.sla import SLAClass, default_classes, validate_classes

#: How long a worker blocks on an empty queue before re-checking the
#: stop flag.  Small enough that drain latency is dominated by real
#: work, large enough that idle workers do not spin.
_IDLE_WAIT_S = 0.02

#: EWMA smoothing for the service-time estimate feeding admission
#: control.  0.2 ≈ the last ~10 requests dominate, so the estimate
#: tracks load shifts within one queue's worth of work.
_EWMA_ALPHA = 0.2


@dataclass
class ServeStats:
    """One coherent snapshot of the server's ledger and gauges.

    The counter block is the conservation ledger; ``queue_depths`` /
    ``in_flight`` / ``healthy_workers`` are point-in-time gauges; the
    ``*_ms`` dicts are latency-histogram summaries (p50/p95/p99) from
    the same reservoir histograms the metrics registry uses.
    """

    submitted: int = 0
    admitted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    admit_failures: int = 0
    completed: int = 0
    timed_out: int = 0
    shed: int = 0
    degraded: int = 0
    requeued: int = 0
    drain_faults: int = 0
    queue_depths: Dict[str, int] = field(default_factory=dict)
    in_flight: int = 0
    healthy_workers: int = 0
    n_workers: int = 0
    ewma_service_ms: float = 0.0
    admission_ms: Dict[str, float] = field(default_factory=dict)
    queue_wait_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    latency_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet terminal (queued + running)."""
        return sum(self.queue_depths.values()) + self.in_flight

    @property
    def conserved(self) -> bool:
        """The conservation law, checkable at any instant."""
        return (
            self.admitted
            == self.completed + self.timed_out + self.shed + self.outstanding
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": dict(self.rejected),
            "admit_failures": self.admit_failures,
            "completed": self.completed,
            "timed_out": self.timed_out,
            "shed": self.shed,
            "degraded": self.degraded,
            "requeued": self.requeued,
            "drain_faults": self.drain_faults,
            "queue_depths": dict(self.queue_depths),
            "in_flight": self.in_flight,
            "healthy_workers": self.healthy_workers,
            "n_workers": self.n_workers,
            "ewma_service_ms": round(self.ewma_service_ms, 3),
            "admission_ms": self.admission_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "latency_ms": self.latency_ms,
            "conserved": self.conserved,
        }


def _summary(histogram: trace.Histogram) -> Dict[str, float]:
    summary = histogram.summary()
    return {
        "count": summary.count,
        "p50": round(summary.p50, 3),
        "p95": round(summary.p95, 3),
        "p99": round(summary.p99, 3),
        "max": round(summary.maximum, 3),
    }


class RetrievalServer:
    """A long-lived threaded query server over an :class:`EnginePool`.

    ``capacity`` bounds the total queued depth (default: the sum of the
    per-class limits, i.e. shedding only under an explicitly tighter
    bound).  ``clock`` must be monotone and is injectable for
    deterministic tests; it feeds queue-wait measurement *and* every
    request's :class:`~repro.core.resilience.QueryBudget`.
    """

    def __init__(
        self,
        pool: EnginePool,
        *,
        classes: Optional[Dict[str, SLAClass]] = None,
        capacity: Optional[int] = None,
        max_attempts: int = 2,
        drain_timeout_ms: float = 5_000.0,
        initial_service_ms: float = 25.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.pool = pool
        self.classes = validate_classes(
            dict(classes) if classes is not None else default_classes()
        )
        if max_attempts < 1:
            raise ServeError(f"max_attempts must be >= 1, got {max_attempts}")
        if drain_timeout_ms < 0:
            raise ServeError(
                f"drain timeout must be >= 0, got {drain_timeout_ms}"
            )
        self.max_attempts = max_attempts
        self.drain_timeout_ms = drain_timeout_ms
        self._clock = clock
        self._sleep = sleep
        self._queue = RequestQueue(
            self.classes,
            capacity
            if capacity is not None
            else sum(sla.queue_limit for sla in self.classes.values()),
            estimator=self._estimate_wait_ms,
            on_shed=self._resolve_shed,
        )
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "admit-failures": 0,
            "completed": 0,
            "timed-out": 0,
            "shed": 0,
            "degraded": 0,
            "requeued": 0,
            "drain-faults": 0,
        }
        self._rejected: Dict[str, int] = {}
        self._in_flight = 0
        self._inflight_tickets: Dict[int, Ticket] = {}
        self._next_id = 0
        self._ewma_service_ms = float(initial_service_ms)
        self._admission_hist = trace.Histogram()
        self._queue_wait_hist = {name: trace.Histogram() for name in self.classes}
        self._latency_hist = {name: trace.Histogram() for name in self.classes}
        self._threads: List[threading.Thread] = []
        self._started = False
        self._closed = False
        self._stop = threading.Event()

    # -- lifecycle -------------------------------------------------------
    def start(
        self, *, warm: bool = True, level: Optional[int] = None
    ) -> "RetrievalServer":
        """Warm the pool and spawn one pinned thread per worker."""
        with self._lock:
            if self._started:
                raise ServeError("server already started")
            if self._closed:
                raise ServeError("server already closed")
            self._started = True
        if warm:
            self.pool.warm(level if level is not None else 2)
        for worker in self.pool.workers:
            thread = threading.Thread(
                target=self._worker_loop,
                args=(worker,),
                name=f"serve-{worker.name}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def __enter__(self) -> "RetrievalServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission -------------------------------------------------------
    def submit(self, request: QueryRequest) -> Ticket:
        """Admit one request or raise :class:`ServeRejected`.

        Admission is O(classes) under one lock — depth checks and an
        EWMA backlog estimate, no engine work — so its latency (the
        ``admission_ms`` gauge) stays microseconds even under overload.
        """
        t0 = self._clock()
        if not self._started:
            raise ServeError("server not started; call start() first")
        with self._lock:
            self._counts["submitted"] += 1
        try:
            resilience.fault(resilience.SITE_SERVE_ADMIT)
        except Exception:
            with self._lock:
                self._counts["admit-failures"] += 1
            raise
        sla = self.classes.get(request.sla)
        if sla is None:
            raise ServeError(
                f"unknown SLA class {request.sla!r}; one of "
                f"{', '.join(sorted(self.classes))}"
            )
        with self._lock:
            self._next_id += 1
            ticket = Ticket(request, self._next_id, t0)
            running = self._in_flight
        try:
            self._queue.offer(ticket, running)
        except ServeRejected as rejection:
            with self._lock:
                self._rejected[rejection.reason] = (
                    self._rejected.get(rejection.reason, 0) + 1
                )
            instrument.count(instrument.SERVE_REJECTED)
            trace.event(
                instrument.SERVE_REJECTED,
                f"{sla.name}: {rejection.reason} "
                f"(retry after {rejection.retry_after_ms:.0f}ms)",
            )
            raise
        with self._lock:
            self._counts["admitted"] += 1
        instrument.count(instrument.SERVE_ADMITTED)
        admission_s = self._clock() - t0
        self._admission_hist.observe(admission_s)
        instrument.observe(instrument.SERVE_ADMISSION_LATENCY, admission_s)
        return ticket

    def query(
        self,
        formula,
        k: int,
        *,
        sla: str = "standard",
        level: int = 2,
        lenient: bool = True,
        profile: bool = False,
        timeout_s: Optional[float] = None,
    ) -> ServeResult:
        """Convenience: parse/submit one request and wait for its result."""
        if isinstance(formula, str):
            formula = parse(formula)
        if not isinstance(formula, ast.Formula):
            raise ServeError(
                f"expected a formula or query text, got {type(formula).__name__}"
            )
        ticket = self.submit(
            QueryRequest(
                formula,
                k,
                level=level,
                sla=sla,
                lenient=lenient,
                profile=profile,
            )
        )
        if timeout_s is None:
            # Terminal within the SLA deadline by construction; the
            # margin covers scheduling slop, not semantics.
            timeout_s = self.classes[sla].deadline_ms / 1000.0 * 2 + 5.0
        return ticket.result(timeout_s)

    # -- admission plumbing ---------------------------------------------
    def _estimate_wait_ms(self, ahead: int) -> float:
        with self._lock:
            ewma = self._ewma_service_ms
        return ahead * ewma / self.pool.n_workers

    def _observe_service(self, service_ms: float) -> None:
        with self._lock:
            self._ewma_service_ms += _EWMA_ALPHA * (
                service_ms - self._ewma_service_ms
            )

    # -- terminal resolution (the ledger) --------------------------------
    def _resolve(self, ticket: Ticket, result: ServeResult, counter: str) -> bool:
        if not ticket.resolve(result):
            return False
        with self._lock:
            self._counts[counter] += 1
        return True

    def _resolve_shed(self, ticket: Ticket, retry_after_ms: float) -> None:
        queue_ms = (self._clock() - ticket.submitted_at) * 1000.0
        if self._resolve(
            ticket,
            ServeResult(
                ticket.request_id,
                ticket.sla,
                STATUS_SHED,
                retry_after_ms=max(retry_after_ms, 1.0),
                queue_ms=queue_ms,
                total_ms=queue_ms,
                attempts=ticket.attempts,
            ),
            "shed",
        ):
            instrument.count(instrument.SERVE_SHED)
            trace.event(
                instrument.SERVE_SHED,
                f"request {ticket.request_id} ({ticket.sla}) after "
                f"{queue_ms:.0f}ms queued",
            )

    def _resolve_timed_out(
        self,
        ticket: Ticket,
        error: BaseException,
        *,
        queue_ms: float,
        service_ms: float = 0.0,
    ) -> None:
        if self._resolve(
            ticket,
            ServeResult(
                ticket.request_id,
                ticket.sla,
                STATUS_TIMED_OUT,
                error=error,
                queue_ms=queue_ms,
                service_ms=service_ms,
                total_ms=(self._clock() - ticket.submitted_at) * 1000.0,
                attempts=ticket.attempts,
            ),
            "timed-out",
        ):
            instrument.count(instrument.SERVE_TIMED_OUT)

    def _resolve_completed(
        self,
        ticket: Ticket,
        topk,
        worker: PooledWorker,
        *,
        queue_ms: float,
        service_ms: float,
        error: Optional[BaseException] = None,
    ) -> None:
        total_ms = (self._clock() - ticket.submitted_at) * 1000.0
        if self._resolve(
            ticket,
            ServeResult(
                ticket.request_id,
                ticket.sla,
                STATUS_COMPLETED,
                topk=topk,
                error=error,
                queue_ms=queue_ms,
                service_ms=service_ms,
                total_ms=total_ms,
                worker=worker.name,
                attempts=ticket.attempts,
            ),
            "completed",
        ):
            instrument.count(instrument.SERVE_COMPLETED)
            self._latency_hist[ticket.sla].observe(total_ms / 1000.0)
            instrument.observe(
                instrument.SERVE_REQUEST_LATENCY, total_ms / 1000.0
            )
            if error is not None:
                with self._lock:
                    self._counts["degraded"] += 1
                instrument.count(instrument.SERVE_DEGRADED)

    # -- the worker loop -------------------------------------------------
    def _worker_loop(self, worker: PooledWorker) -> None:
        while not self._stop.is_set():
            ticket = self._queue.take(_IDLE_WAIT_S)
            if ticket is None:
                continue
            try:
                self._serve_one(worker, ticket)
            except Exception as error:  # absolute backstop: never drop
                self._resolve_completed(
                    ticket,
                    self.pool.degraded_result(error),
                    worker,
                    queue_ms=(self._clock() - ticket.submitted_at) * 1000.0,
                    service_ms=0.0,
                    error=error,
                )

    def _serve_one(self, worker: PooledWorker, ticket: Ticket) -> None:
        now = self._clock()
        queue_ms = (now - ticket.submitted_at) * 1000.0
        sla = self.classes[ticket.sla]
        try:
            budget = sla.budget(queue_ms, clock=self._clock)
        except BudgetExceededError as expired:
            # The whole deadline burned in the queue: terminal without
            # touching an engine (admission control's last line).
            self._resolve_timed_out(ticket, expired, queue_ms=queue_ms)
            return
        if not worker.breaker.allow():
            ticket.bounces += 1
            if ticket.bounces <= 2 * self.pool.n_workers:
                with self._lock:
                    self._counts["requeued"] += 1
                instrument.count(instrument.SERVE_REQUEUED)
                self._queue.requeue(ticket)
                self._sleep(_IDLE_WAIT_S / 4)  # let a sibling take it
                return
            # Every worker is refusing: degrade rather than livelock.
            error = ServeError(
                f"no healthy worker for request {ticket.request_id} after "
                f"{ticket.bounces} bounces"
            )
            self._resolve_completed(
                ticket,
                self.pool.degraded_result(error),
                worker,
                queue_ms=queue_ms,
                service_ms=0.0,
                error=error,
            )
            return
        self._queue_wait_hist[ticket.sla].observe(queue_ms / 1000.0)
        instrument.observe(instrument.SERVE_QUEUE_WAIT, queue_ms / 1000.0)
        ticket.dispatched_at = now
        with self._lock:
            self._in_flight += 1
            self._inflight_tickets[ticket.request_id] = ticket
        started = self._clock()
        try:
            ticket.attempts += 1
            resilience.fault(resilience.SITE_SERVE_WORKER)
            topk = self._execute(worker, ticket, budget)
        except BudgetExceededError as overrun:
            # Not the worker's fault: the budget fired mid-query.
            service_ms = (self._clock() - started) * 1000.0
            self._observe_service(service_ms)
            self._resolve_timed_out(
                ticket, overrun, queue_ms=queue_ms, service_ms=service_ms
            )
        except Exception as failure:
            worker.breaker.record_failure()
            service_ms = (self._clock() - started) * 1000.0
            remaining = sla.deadline_ms - (
                (self._clock() - ticket.submitted_at) * 1000.0
            )
            if ticket.attempts < self.max_attempts and remaining > 0:
                with self._lock:
                    self._counts["requeued"] += 1
                instrument.count(instrument.SERVE_REQUEUED)
                self._queue.requeue(ticket)
            else:
                self._resolve_completed(
                    ticket,
                    self.pool.degraded_result(failure),
                    worker,
                    queue_ms=queue_ms,
                    service_ms=service_ms,
                    error=failure,
                )
        else:
            worker.breaker.record_success()
            worker.record_served()
            service_ms = (self._clock() - started) * 1000.0
            self._observe_service(service_ms)
            self._resolve_completed(
                ticket,
                topk,
                worker,
                queue_ms=queue_ms,
                service_ms=service_ms,
            )
        finally:
            with self._lock:
                self._in_flight -= 1
                self._inflight_tickets.pop(ticket.request_id, None)

    def _execute(self, worker: PooledWorker, ticket: Ticket, budget):
        """Run the request, under a per-request span tree when asked."""
        request = ticket.request
        if not request.profile:
            return self.pool.execute(worker, request, budget)
        with trace.recording() as recorder:
            with recorder.span(
                trace.KIND_SERVE,
                f"request-{ticket.request_id}",
                sla=ticket.sla,
                worker=worker.name,
                attempt=ticket.attempts,
            ) as serve_span:
                result = self.pool.execute(worker, request, budget)
                serve_span.attrs["queue-ms"] = round(
                    (ticket.dispatched_at - ticket.submitted_at) * 1000.0, 3
                )
        result.profile = serve_span
        return result

    # -- shutdown --------------------------------------------------------
    def close(self, drain_timeout_ms: Optional[float] = None) -> ServeStats:
        """Graceful drain: finish or time out everything, then stop.

        Idempotent.  Admission closes immediately (new submits are
        rejected ``closing``); queued and in-flight work gets the drain
        timeout to finish; whatever is still unresolved afterwards is
        swept ``timed-out``.  An injected fault at the ``serve-drain``
        site is absorbed and counted — a failing drain hook must never
        leave the ledger unbalanced.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            return self.stats()
        self._queue.close()
        try:
            resilience.fault(resilience.SITE_SERVE_DRAIN)
        except Exception:
            with self._lock:
                self._counts["drain-faults"] += 1
        timeout_ms = (
            drain_timeout_ms
            if drain_timeout_ms is not None
            else self.drain_timeout_ms
        )
        deadline = self._clock() + timeout_ms / 1000.0
        while self._clock() < deadline:
            with self._lock:
                in_flight = self._in_flight
            if self._queue.depth() == 0 and in_flight == 0:
                break
            self._sleep(0.005)
        drained_error = BudgetExceededError(
            "server drained before the request could run",
            site="serve-drain",
        )
        for ticket in self._queue.drain_remaining():
            self._resolve_timed_out(
                ticket,
                drained_error,
                queue_ms=(self._clock() - ticket.submitted_at) * 1000.0,
            )
        self._stop.set()
        join_s = (
            max(sla.deadline_ms for sla in self.classes.values()) / 1000.0
            + 1.0
        )
        for thread in self._threads:
            thread.join(timeout=join_s)
        # Absolute sweep: a worker that died or wedged past the join
        # timeout must still not leave its ticket unresolved.
        with self._lock:
            stragglers = list(self._inflight_tickets.values())
        for ticket in stragglers:
            self._resolve_timed_out(
                ticket,
                drained_error,
                queue_ms=(self._clock() - ticket.submitted_at) * 1000.0,
            )
        return self.stats()

    # -- observability ---------------------------------------------------
    def stats(self) -> ServeStats:
        with self._lock:
            counts = dict(self._counts)
            rejected = dict(self._rejected)
            in_flight = self._in_flight
            ewma = self._ewma_service_ms
        return ServeStats(
            submitted=counts["submitted"],
            admitted=counts["admitted"],
            rejected=rejected,
            admit_failures=counts["admit-failures"],
            completed=counts["completed"],
            timed_out=counts["timed-out"],
            shed=counts["shed"],
            degraded=counts["degraded"],
            requeued=counts["requeued"],
            drain_faults=counts["drain-faults"],
            queue_depths=self._queue.depths(),
            in_flight=in_flight,
            healthy_workers=len(self.pool.healthy_workers()),
            n_workers=self.pool.n_workers,
            ewma_service_ms=ewma,
            admission_ms=_summary(self._admission_hist),
            queue_wait_ms={
                name: _summary(hist)
                for name, hist in self._queue_wait_hist.items()
            },
            latency_ms={
                name: _summary(hist)
                for name, hist in self._latency_hist.items()
            },
        )
