"""Requests, tickets, and terminal results of the serving layer.

The server's correctness story hangs on one invariant: **every admitted
request terminates in exactly one of** ``completed`` / ``timed-out`` /
``shed``.  :class:`Ticket` is where that invariant is enforced — it is
a one-shot, thread-safe promise whose :meth:`~Ticket.resolve` accepts
the *first* terminal result and ignores every later attempt (drain and
a finishing worker may race to resolve the same ticket; exactly one
wins, nothing is dropped, nothing is double-counted).

``queued``/``running`` are transient bookkeeping states; the chaos
suite's conservation check sums the terminal ledger against admissions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.topk import TopKResult
from repro.errors import ServeError, ServeRejected
from repro.htl import ast

#: Transient request states.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
#: Terminal request states — exactly one per admitted request.
STATUS_COMPLETED = "completed"
STATUS_TIMED_OUT = "timed-out"
STATUS_SHED = "shed"

TERMINAL_STATUSES = (STATUS_COMPLETED, STATUS_TIMED_OUT, STATUS_SHED)


@dataclass(frozen=True)
class QueryRequest:
    """One retrieval request: what to run and under which latency class.

    ``lenient`` defaults to True — a serving layer prefers a partial
    ranking with named degraded videos over a hard failure; strict
    per-request semantics remain available for callers that need them.
    ``profile=True`` attaches a per-request span tree to the result
    (exported through the DESIGN.md §10 observability payloads).
    """

    formula: ast.Formula
    k: int
    level: int = 2
    sla: str = "standard"
    lenient: bool = True
    profile: bool = False
    parallelism: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ServeError(f"k must be >= 1, got {self.k}")
        if self.level < 1:
            raise ServeError(f"levels are numbered from 1, got {self.level}")


@dataclass
class ServeResult:
    """The terminal outcome of one admitted request.

    ``status`` is one of :data:`TERMINAL_STATUSES`.  ``topk`` is present
    for ``completed`` (possibly ``partial=True`` after graceful
    degradation); ``error`` carries the terminating exception for
    ``timed-out`` and degraded completions; ``retry_after_ms`` is set
    for ``shed``.  The timing triple decomposes the SLA: ``total_ms ≈
    queue_ms + service_ms`` (+ scheduling slop).
    """

    request_id: int
    sla: str
    status: str
    topk: Optional[TopKResult] = None
    error: Optional[BaseException] = None
    retry_after_ms: float = 0.0
    queue_ms: float = 0.0
    service_ms: float = 0.0
    total_ms: float = 0.0
    worker: Optional[str] = None
    attempts: int = 0

    @property
    def completed(self) -> bool:
        return self.status == STATUS_COMPLETED

    @property
    def degraded(self) -> bool:
        """True when the ranking is best-effort (partial or recovered)."""
        return self.completed and (
            self.error is not None
            or (self.topk is not None and self.topk.partial)
        )

    def raise_for_status(self) -> TopKResult:
        """The ranking, or the typed error for a non-completed request."""
        if self.status == STATUS_COMPLETED:
            assert self.topk is not None
            return self.topk
        if self.status == STATUS_SHED:
            raise ServeRejected(
                f"request {self.request_id} shed under pressure",
                retry_after_ms=self.retry_after_ms,
                reason="shed",
                sla=self.sla,
            )
        error = self.error or ServeError(
            f"request {self.request_id} timed out"
        )
        raise error

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe summary (the serve response / bench row shape)."""
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "sla": self.sla,
            "status": self.status,
            "queue_ms": round(self.queue_ms, 3),
            "service_ms": round(self.service_ms, 3),
            "total_ms": round(self.total_ms, 3),
            "attempts": self.attempts,
        }
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.retry_after_ms:
            payload["retry_after_ms"] = round(self.retry_after_ms, 3)
        if self.error is not None:
            payload["error"] = type(self.error).__name__
        if self.topk is not None:
            payload["result"] = self.topk.to_payload()
        return payload


class Ticket:
    """A one-shot promise for one admitted request.

    Thread-safe: any number of threads may race :meth:`resolve`; the
    first terminal result wins and later ones are ignored (returning
    False so callers can keep their ledgers exact).  ``wait``/``result``
    block on an event, so a client thread parks without spinning.
    """

    __slots__ = (
        "request",
        "request_id",
        "submitted_at",
        "admitted_at",
        "dispatched_at",
        "attempts",
        "bounces",
        "_event",
        "_lock",
        "_result",
    )

    def __init__(
        self, request: QueryRequest, request_id: int, submitted_at: float
    ):
        self.request = request
        self.request_id = request_id
        self.submitted_at = submitted_at
        self.admitted_at = submitted_at
        self.dispatched_at: Optional[float] = None
        #: Execution attempts so far (failed attempts retry on the pool).
        self.attempts = 0
        #: Times the ticket was bounced back to the queue by an
        #: unhealthy worker without an execution attempt.
        self.bounces = 0
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[ServeResult] = None

    @property
    def sla(self) -> str:
        return self.request.sla

    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, result: ServeResult) -> bool:
        """Install the terminal result; False when already resolved."""
        if result.status not in TERMINAL_STATUSES:
            raise ServeError(
                f"cannot resolve a ticket with transient status "
                f"{result.status!r}"
            )
        with self._lock:
            if self._result is not None:
                return False
            self._result = result
        self._event.set()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        """Block until terminal; raises ServeError on timeout."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"request {self.request_id} not terminal after "
                f"{timeout}s wait"
            )
        assert self._result is not None
        return self._result

    def peek(self) -> Optional[ServeResult]:
        """The terminal result if resolved, else None (non-blocking)."""
        with self._lock:
            return self._result

    def __repr__(self) -> str:
        state = self._result.status if self._result else "pending"
        return f"Ticket({self.request_id}, {self.sla!r}, {state})"
