"""Concurrent retrieval serving: admission control, load shedding, and
SLA-derived budgets (DESIGN.md §14).

The package turns the batch-oriented retrieval stack
(:class:`~repro.core.engine.RetrievalEngine`,
:func:`~repro.core.topk.top_k_across_videos`,
:class:`~repro.shard.ShardedCorpus`) into a long-lived threaded query
service::

    from repro.serve import EnginePool, QueryRequest, RetrievalServer

    pool = EnginePool.from_store("snapshots/", n_workers=4)
    with RetrievalServer(pool) as server:
        result = server.query("exists x . present(x)", k=5,
                              sla="interactive")
        ranking = result.raise_for_status()

Layering: :mod:`~repro.serve.sla` (latency classes → budgets),
:mod:`~repro.serve.request` (tickets and terminal results),
:mod:`~repro.serve.queue` (bounded priority queue: admission +
shedding), :mod:`~repro.serve.pool` (warm engines + breakers),
:mod:`~repro.serve.server` (the threaded server and its ledger).
"""

from repro.errors import ServeError, ServeRejected
from repro.serve.pool import EnginePool, PooledWorker, PROBE_QUERY
from repro.serve.queue import RequestQueue
from repro.serve.request import (
    STATUS_COMPLETED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    TERMINAL_STATUSES,
    QueryRequest,
    ServeResult,
    Ticket,
)
from repro.serve.server import RetrievalServer, ServeStats
from repro.serve.sla import (
    BATCH,
    INTERACTIVE,
    STANDARD,
    SLAClass,
    default_classes,
    scaled,
    validate_classes,
)

__all__ = [
    "BATCH",
    "INTERACTIVE",
    "PROBE_QUERY",
    "STANDARD",
    "STATUS_COMPLETED",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "STATUS_SHED",
    "STATUS_TIMED_OUT",
    "TERMINAL_STATUSES",
    "EnginePool",
    "PooledWorker",
    "QueryRequest",
    "RequestQueue",
    "RetrievalServer",
    "ServeError",
    "ServeRejected",
    "ServeResult",
    "ServeStats",
    "SLAClass",
    "Ticket",
    "default_classes",
    "scaled",
    "validate_classes",
]
