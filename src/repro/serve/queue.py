"""The bounded, latency-class-aware request queue (DESIGN.md §14).

One structure owns the three load-control decisions:

* **Admission** (:meth:`RequestQueue.offer`) — a request is refused with
  a typed :class:`~repro.errors.ServeRejected` (carrying a
  ``retry_after_ms`` hint) when its class's queue is full, or when the
  estimated backlog *at its priority or above* already exceeds its
  class deadline.  The estimate comes from the server's service-time
  EWMA: ``(running + queued_at_or_above) × ewma / workers`` — admitting
  a request that provably cannot meet its SLA only wastes the engine
  time that requests with a chance still need.
* **Shedding** (inside :meth:`offer`) — when total depth hits the
  server's capacity, an arriving higher-priority request evicts the
  *oldest, lowest-priority* queued ticket instead of being refused.
  The evicted ticket terminates ``shed`` with a retry hint; batch work
  is therefore shed first, and interactive work is never shed to make
  room for batch.
* **Dispatch order** (:meth:`take`) — strict priority, FIFO within a
  class.  Expiry is *not* checked here: the worker checks the deadline
  at dispatch so the queue stays a pure container.

Thread-safe around one condition variable; no busy-waiting.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ServeRejected
from repro.serve.request import Ticket
from repro.serve.sla import SLAClass


class RequestQueue:
    """Bounded per-class FIFO queues behind one condition variable.

    ``capacity`` bounds the *total* queued depth across classes (each
    class's ``queue_limit`` bounds it individually).  ``estimator`` maps
    a number of requests ahead to estimated wait in milliseconds; the
    server wires its EWMA in.  ``on_shed`` receives evicted tickets —
    the server resolves them ``shed`` so the queue never touches the
    terminal ledger itself.
    """

    def __init__(
        self,
        classes: Dict[str, SLAClass],
        capacity: int,
        *,
        estimator: Callable[[int], float],
        on_shed: Callable[[Ticket, float], None],
    ):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.classes = classes
        self.capacity = capacity
        self._estimator = estimator
        self._on_shed = on_shed
        #: Class names in dispatch order: highest priority first.
        self._order: List[str] = [
            sla.name
            for sla in sorted(
                classes.values(), key=lambda c: -c.priority
            )
        ]
        self._queues: Dict[str, Deque[Ticket]] = {
            name: deque() for name in classes
        }
        self._condition = threading.Condition()
        self._closed = False

    # -- introspection ---------------------------------------------------
    def depth(self, sla: Optional[str] = None) -> int:
        """Queued tickets of one class, or of all classes."""
        with self._condition:
            if sla is not None:
                return len(self._queues[sla])
            return sum(len(q) for q in self._queues.values())

    def depths(self) -> Dict[str, int]:
        """Point-in-time per-class depth gauge."""
        with self._condition:
            return {name: len(q) for name, q in self._queues.items()}

    # -- admission -------------------------------------------------------
    def _depth_at_or_above(self, priority: int) -> int:
        return sum(
            len(self._queues[name])
            for name in self._order
            if self.classes[name].priority >= priority
        )

    def offer(self, ticket: Ticket, running: int) -> None:
        """Admit ``ticket`` or raise :class:`ServeRejected`.

        ``running`` is the number of requests currently executing —
        they are ahead of this ticket regardless of class, so they
        count into the backlog estimate.  May evict (shed) older
        lower-priority tickets to stay within total capacity.
        """
        sla = self.classes[ticket.sla]
        with self._condition:
            if self._closed:
                raise ServeRejected(
                    "server is draining; not accepting new requests",
                    retry_after_ms=self._estimator(1),
                    reason="closing",
                    sla=sla.name,
                )
            queue = self._queues[sla.name]
            if len(queue) >= sla.queue_limit:
                raise ServeRejected(
                    f"{sla.name} queue is full "
                    f"({len(queue)}/{sla.queue_limit})",
                    retry_after_ms=self._estimator(len(queue)),
                    reason="queue-full",
                    sla=sla.name,
                )
            ahead = running + self._depth_at_or_above(sla.priority)
            estimated_wait = self._estimator(ahead)
            if estimated_wait >= sla.deadline_ms:
                raise ServeRejected(
                    f"estimated backlog {estimated_wait:.0f}ms exceeds the "
                    f"{sla.name} deadline of {sla.deadline_ms:g}ms",
                    retry_after_ms=estimated_wait - sla.deadline_ms
                    + self._estimator(1),
                    reason="backlog",
                    sla=sla.name,
                )
            shed: List[Ticket] = []
            while (
                sum(len(q) for q in self._queues.values()) >= self.capacity
            ):
                victim = self._oldest_below(sla.priority)
                if victim is None:
                    raise ServeRejected(
                        f"queue at capacity ({self.capacity}) with no "
                        f"lower-priority work to shed",
                        retry_after_ms=self._estimator(1),
                        reason="queue-full",
                        sla=sla.name,
                    )
                shed.append(victim)
            queue.append(ticket)
            self._condition.notify()
        # Outside the lock: shedding resolves tickets (client callbacks).
        for victim in shed:
            self._on_shed(victim, self._estimator(1))

    def _oldest_below(self, priority: int) -> Optional[Ticket]:
        """Pop the oldest queued ticket of the lowest class below
        ``priority`` (shedding order), or None when nothing qualifies."""
        for name in reversed(self._order):  # lowest priority first
            if self.classes[name].priority >= priority:
                break
            queue = self._queues[name]
            if queue:
                return queue.popleft()
        return None

    # -- dispatch --------------------------------------------------------
    def take(self, timeout: float) -> Optional[Ticket]:
        """The next ticket in strict priority order, or None on timeout."""
        with self._condition:
            if not self._condition.wait_for(self._any_queued, timeout):
                return None
            for name in self._order:
                queue = self._queues[name]
                if queue:
                    return queue.popleft()
        return None  # pragma: no cover - wait_for guarantees a ticket

    def _any_queued(self) -> bool:
        return any(self._queues.values())

    def requeue(self, ticket: Ticket) -> None:
        """Return a ticket to the *front* of its class (breaker bounce:
        the ticket keeps its queue position, another worker takes it)."""
        with self._condition:
            self._queues[ticket.sla].appendleft(ticket)
            self._condition.notify()

    # -- shutdown --------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; queued work keeps draining through ``take``."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def drain_remaining(self) -> List[Ticket]:
        """Remove and return every still-queued ticket (drain timeout)."""
        with self._condition:
            leftovers: List[Ticket] = []
            for name in self._order:
                queue = self._queues[name]
                leftovers.extend(queue)
                queue.clear()
            return leftovers
