"""Latency classes and SLA-derived query budgets (DESIGN.md §14).

A serving request names one of a small set of *latency classes*; each
class carries the whole contract the server enforces for it:

* ``deadline_ms`` — the end-to-end SLA: submit → terminal state.  The
  time a request spends queued is charged against it, so the
  :class:`~repro.core.resilience.QueryBudget` a worker finally runs
  under is ``deadline_ms`` *minus* queue wait — a request that waited
  180ms of a 200ms SLA executes under a 20ms budget, and one that
  waited past its whole deadline terminates ``timed-out`` without
  touching an engine at all.
* ``max_steps`` — the cooperative step ceiling per request, sliced
  across shards by the existing :func:`repro.shard.corpus.slice_budget`
  when the pool serves a sharded corpus.
* ``queue_limit`` — how many requests of this class may wait at once;
  the class's admission-control backstop.
* ``priority`` — dispatch and shedding rank.  Higher priorities are
  dispatched first and shed last; under capacity pressure the server
  evicts the *oldest, lowest-priority* queued work (batch before
  standard before interactive).

The three default classes model the obvious service tiers: a human
waiting at a console (``interactive``), an application call
(``standard``), and offline re-ranking (``batch``).  Deadlines scale
with ``default_classes(scale=...)`` so tests and benchmarks can shrink
or grow the whole ladder against a measured service time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.core.resilience import QueryBudget
from repro.errors import BudgetExceededError, ServeError

#: The default latency-class names, in shedding order.
BATCH = "batch"
STANDARD = "standard"
INTERACTIVE = "interactive"


@dataclass(frozen=True)
class SLAClass:
    """One latency class: its deadline, budget, bounds, and rank."""

    name: str
    deadline_ms: float
    max_steps: Optional[int] = None
    queue_limit: int = 64
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServeError("an SLA class needs a non-empty name")
        if self.deadline_ms <= 0:
            raise ServeError(
                f"SLA class {self.name!r}: deadline must be positive, "
                f"got {self.deadline_ms}ms"
            )
        if self.max_steps is not None and self.max_steps <= 0:
            raise ServeError(
                f"SLA class {self.name!r}: step ceiling must be positive, "
                f"got {self.max_steps}"
            )
        if self.queue_limit < 1:
            raise ServeError(
                f"SLA class {self.name!r}: queue limit must be >= 1, "
                f"got {self.queue_limit}"
            )

    def budget(
        self,
        queued_ms: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> QueryBudget:
        """The execution budget left after ``queued_ms`` in the queue.

        Raises :class:`~repro.errors.BudgetExceededError` when the queue
        wait already consumed the whole deadline — the caller resolves
        the request ``timed-out`` instead of dispatching it.
        """
        remaining = self.deadline_ms - queued_ms
        if remaining <= 0:
            raise BudgetExceededError(
                f"SLA class {self.name!r}: {queued_ms:.1f}ms queued "
                f"consumed the whole {self.deadline_ms:g}ms deadline",
                site="serve-admit",
                elapsed_ms=queued_ms,
            )
        return QueryBudget(
            deadline_ms=remaining, max_steps=self.max_steps, clock=clock
        )


def default_classes(scale: float = 1.0) -> Dict[str, SLAClass]:
    """The three default tiers, deadlines multiplied by ``scale``.

    ``scale`` lets a benchmark anchor the ladder to a measured service
    time (e.g. ``scale = service_ms / 10`` makes the interactive
    deadline 50× one query) and lets tests shrink every deadline to
    milliseconds without re-deriving the ladder's shape.
    """
    if scale <= 0:
        raise ServeError(f"SLA scale must be positive, got {scale}")
    classes = (
        SLAClass(
            INTERACTIVE,
            deadline_ms=500.0 * scale,
            queue_limit=32,
            priority=2,
        ),
        SLAClass(
            STANDARD,
            deadline_ms=2_000.0 * scale,
            queue_limit=64,
            priority=1,
        ),
        SLAClass(
            BATCH,
            deadline_ms=10_000.0 * scale,
            queue_limit=128,
            priority=0,
        ),
    )
    return {sla.name: sla for sla in classes}


def validate_classes(classes: Dict[str, SLAClass]) -> Dict[str, SLAClass]:
    """Check a class registry: names map to themselves, unique priorities.

    Duplicate priorities would make dispatch and shedding order depend
    on dict iteration order — rejected up front rather than debugged
    under load.
    """
    if not classes:
        raise ServeError("a server needs at least one SLA class")
    priorities = set()
    for key, sla in classes.items():
        if key != sla.name:
            raise ServeError(
                f"SLA registry key {key!r} does not match class name "
                f"{sla.name!r}"
            )
        if sla.priority in priorities:
            raise ServeError(
                f"duplicate SLA priority {sla.priority} (class {key!r}); "
                "dispatch order must be total"
            )
        priorities.add(sla.priority)
    return classes


def scaled(sla: SLAClass, scale: float) -> SLAClass:
    """A copy of ``sla`` with its deadline multiplied by ``scale``."""
    if scale <= 0:
        raise ServeError(f"SLA scale must be positive, got {scale}")
    return replace(sla, deadline_ms=sla.deadline_ms * scale)
