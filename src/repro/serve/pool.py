"""Warm engine pools: the compute side of the serving layer.

A server must not pay a snapshot load, an index build, or a cold
evaluation cache on a request's critical path.  :class:`EnginePool`
front-loads all three: the corpus is loaded **once** (from an in-memory
database, a :class:`repro.store.Store` snapshot, or a sharded layout),
:meth:`EnginePool.warm` touches every video's picture index at the
serving level, and each worker keeps its own long-lived
:class:`~repro.core.engine.RetrievalEngine` whose caches and compiled
plans persist across requests (per-worker engines: the caches are the
mutable state, so workers never contend on them).

Every worker carries a :class:`~repro.core.resilience.CircuitBreaker`:
repeated failures take the worker out of rotation (the server bounces
its work to siblings) until a cooldown probe passes.
:meth:`EnginePool.degraded_result` is the last rung — a typed *partial*
:class:`~repro.core.topk.TopKResult` naming every video ``failed``, so
even a request that exhausted all retries terminates with an honest,
well-formed answer instead of an opaque exception.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core import resilience
from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.resilience import CircuitBreaker, QueryBudget
from repro.core.topk import (
    OUTCOME_FAILED,
    TopKResult,
    VideoOutcome,
    top_k_across_videos,
)
from repro.errors import ServeError
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.serve.request import QueryRequest

#: The trivial health-probe query: satisfiable on any corpus with
#: object metadata, cheap even naively, and exercising parse → plan →
#: index → score end to end.
PROBE_QUERY = "exists x . present(x)"


class PooledWorker:
    """One warm worker: a named engine plus its circuit breaker."""

    __slots__ = ("name", "engine", "breaker", "served", "_lock")

    def __init__(
        self,
        name: str,
        engine: RetrievalEngine,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 8,
    ):
        self.name = name
        self.engine = engine
        self.breaker = CircuitBreaker(
            name,
            failure_threshold=breaker_threshold,
            cooldown=breaker_cooldown,
        )
        self.served = 0
        self._lock = threading.Lock()

    @property
    def healthy(self) -> bool:
        """False while the breaker refuses work (open, pre-cooldown)."""
        return self.breaker.state != resilience.OPEN

    def record_served(self) -> None:
        with self._lock:
            self.served += 1

    def __repr__(self) -> str:
        return (
            f"PooledWorker({self.name!r}, breaker={self.breaker.state}, "
            f"served={self.served})"
        )


class EnginePool:
    """N warm workers over one shared corpus (database or sharded).

    The corpus objects are immutable at serving time, so workers share
    them; each worker's engine owns its own caches.  Exactly one of
    ``database`` / ``corpus`` is set.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        database: Optional[VideoDatabase] = None,
        corpus=None,
        config: Optional[EngineConfig] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: int = 8,
    ):
        if n_workers < 1:
            raise ServeError(f"a pool needs >= 1 worker, got {n_workers}")
        if (database is None) == (corpus is None):
            raise ServeError(
                "a pool serves exactly one corpus: pass database= or corpus="
            )
        self._database = database
        self._corpus = corpus
        self.config = config or EngineConfig()
        self.workers: Tuple[PooledWorker, ...] = tuple(
            PooledWorker(
                f"worker-{position}",
                RetrievalEngine(self.config),
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown,
            )
            for position in range(n_workers)
        )

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_database(
        cls, database: VideoDatabase, n_workers: int, **kwargs
    ) -> "EnginePool":
        return cls(n_workers, database=database, **kwargs)

    @classmethod
    def from_corpus(cls, corpus, n_workers: int, **kwargs) -> "EnginePool":
        """Serve a :class:`repro.shard.ShardedCorpus` (scatter-gather)."""
        return cls(n_workers, corpus=corpus, **kwargs)

    @classmethod
    def from_store(
        cls, path, n_workers: int, *, verify: bool = True, **kwargs
    ) -> "EnginePool":
        """Load the newest intact snapshot once and serve it warm."""
        from repro.store import Store

        loaded = Store(path).load(verify=verify)
        return cls(n_workers, database=loaded.database, **kwargs)

    @classmethod
    def from_shard_layout(cls, path, n_workers: int, **kwargs) -> "EnginePool":
        """Serve a sharded store layout written by ``shard split``."""
        from repro.shard import ShardedCorpus

        return cls(
            n_workers, corpus=ShardedCorpus.from_directory(path), **kwargs
        )

    # -- introspection ---------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def sharded(self) -> bool:
        return self._corpus is not None

    def video_names(self) -> List[str]:
        if self._corpus is not None:
            return list(self._corpus.video_names)
        return list(self._database.names())

    def healthy_workers(self) -> List[PooledWorker]:
        return [worker for worker in self.workers if worker.healthy]

    # -- lifecycle -------------------------------------------------------
    def warm(self, level: int = 2) -> int:
        """Build every video's picture index at the serving level.

        Returns the number of videos warmed.  For a sharded corpus this
        also triggers every shard's (memoized) snapshot load, so the
        first real request pays neither disk nor index build.
        """
        warmed = 0
        for database in self._databases():
            for video in database.videos():
                video.root.pictures_at_level(min(level, video.n_levels))
                warmed += 1
        return warmed

    def refresh(
        self, video_names: Optional[Sequence[str]] = None, level: int = 2
    ) -> int:
        """Re-warm after a live ingest batch landed (checkpoint/commit).

        ``video_names`` limits the work to the videos the batch touched
        (``None`` re-warms everything).  Per-worker caches need no
        explicit drop: engines sync against per-video generation stamps,
        so each touched video's stale entries fall on its next query.
        Rebuilding the picture indexes here moves that cost off the
        serving path.  Returns the number of videos re-warmed.

        Designed as an ingest commit listener::

            ingester.add_listener(pool.refresh)
        """
        wanted = None if video_names is None else set(video_names)
        warmed = 0
        for database in self._databases():
            for video in database.videos():
                if wanted is not None and video.name not in wanted:
                    continue
                video.root.pictures_at_level(min(level, video.n_levels))
                warmed += 1
        return warmed

    def _databases(self) -> Sequence[VideoDatabase]:
        if self._corpus is not None:
            return [shard.database() for shard in self._corpus.shards]
        return [self._database]

    def probe(self, worker: PooledWorker, *, deadline_ms: float = 1_000.0) -> bool:
        """Health-check one worker with the trivial probe query.

        Success closes the worker's breaker, failure feeds it — so a
        probe is also how a half-open worker re-earns rotation.
        """
        try:
            self.execute(
                worker,
                QueryRequest(parse(PROBE_QUERY), k=1),
                QueryBudget(deadline_ms=deadline_ms),
            )
        except Exception:
            worker.breaker.record_failure()
            return False
        worker.breaker.record_success()
        return True

    # -- execution -------------------------------------------------------
    def execute(
        self,
        worker: PooledWorker,
        request: QueryRequest,
        budget: Optional[QueryBudget],
    ) -> TopKResult:
        """Run one request on one worker's engine (no retry logic here)."""
        if self._corpus is not None:
            return self._corpus.top_k(
                worker.engine,
                request.formula,
                request.k,
                level=request.level,
                parallelism=request.parallelism,
                budget=budget,
                lenient=request.lenient,
            )
        return top_k_across_videos(
            worker.engine,
            request.formula,
            self._database,
            request.k,
            level=request.level,
            parallelism=request.parallelism,
            budget=budget,
            lenient=request.lenient,
        )

    def degraded_result(self, error: BaseException) -> TopKResult:
        """The graceful-degradation floor: an empty *partial* ranking
        naming every video ``failed`` with the terminating error."""
        return TopKResult(
            [],
            [
                VideoOutcome(name, OUTCOME_FAILED, error)
                for name in self.video_names()
            ],
            partial=True,
        )

    def __repr__(self) -> str:
        backend = "corpus" if self.sharded else "database"
        return f"EnginePool({self.n_workers} workers over a {backend})"
