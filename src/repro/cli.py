"""Command-line front end: parse, classify, and run HTL queries.

Examples::

    htl-query classify "exists x . eventually present(x)"
    htl-query run --dataset casablanca \\
        "atomic('Man-Woman') and eventually atomic('Moving-Train')"
    htl-query run --dataset western --level frame --top 3 "<formula>"
    htl-query sql "$P1 until $P2" --size 1000     # show generated SQL
    htl-query datasets
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.bench.reporting import similarity_table_text
from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.topk import top_k_segments
from repro.errors import ReproError
from repro.htl import parse, paper_class, pretty, skeleton_class
from repro.model.database import VideoDatabase
from repro.sqlbaseline.system import SQLRetrievalSystem
from repro.workloads.casablanca import casablanca_database
from repro.workloads.movies import example_database
from repro.workloads.synthetic import perf_workload

_DATASETS = {
    "casablanca": ("making-of-casablanca", casablanca_database),
    "western": ("western", example_database),
    "gulf-war": ("gulf-war", example_database),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="htl-query",
        description="Similarity-based retrieval of videos with HTL queries",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify = commands.add_parser(
        "classify", help="parse a query and report its formula class"
    )
    classify.add_argument("query", help="HTL query text")

    explain_cmd = commands.add_parser(
        "explain", help="show the evaluation plan for a query"
    )
    explain_cmd.add_argument("query", help="HTL query text")
    explain_cmd.add_argument(
        "--optimize",
        action="store_true",
        help="apply the rewrite rules before explaining",
    )

    run = commands.add_parser("run", help="evaluate a query on a dataset")
    run.add_argument("query", help="HTL query text")
    run.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="built-in dataset (default: casablanca)",
    )
    run.add_argument(
        "--level",
        default=None,
        help="level name or number to assert the query at (default: 2)",
    )
    run.add_argument(
        "--top", type=int, default=0, help="also print the top-k segments"
    )
    run.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="until threshold on fractional similarity (default: 0.5)",
    )
    run.add_argument(
        "--join-mode",
        choices=("inner", "outer"),
        default="inner",
        help="paper's inner join or definitional outer join",
    )
    run.add_argument(
        "--ranked", action="store_true", help="order output by similarity"
    )

    sql = commands.add_parser(
        "sql", help="show and optionally execute the SQL translation"
    )
    sql.add_argument("query", help="type (1) HTL query over $P1, $P2, ...")
    sql.add_argument(
        "--size", type=int, default=1000, help="synthetic workload size"
    )
    sql.add_argument(
        "--execute",
        action="store_true",
        help="run the script on the mini engine and print the result",
    )

    commands.add_parser("datasets", help="list built-in datasets")
    return parser


def _resolve_level(video, level_argument: Optional[str]) -> int:
    if level_argument is None:
        return min(2, video.n_levels)
    if level_argument.isdigit():
        return int(level_argument)
    return video.level_of(level_argument)


def cmd_classify(arguments: argparse.Namespace) -> int:
    formula = parse(arguments.query)
    print(f"parsed:    {pretty(formula)}")
    print(f"paper class:    {paper_class(formula).name}")
    print(f"skeleton class: {skeleton_class(formula).name}")
    return 0


def cmd_explain(arguments: argparse.Namespace) -> int:
    from repro.core.explain import explain
    from repro.core.optimizer import optimize

    formula = parse(arguments.query)
    if arguments.optimize:
        optimized = optimize(formula)
        if optimized != formula:
            print(f"rewritten: {pretty(optimized)}\n")
        formula = optimized
    print(explain(formula))
    return 0


def cmd_run(arguments: argparse.Namespace) -> int:
    video_name, loader = _DATASETS[arguments.dataset]
    database: VideoDatabase = loader()
    video = database.get(video_name)
    formula = parse(arguments.query)
    engine = RetrievalEngine(
        EngineConfig(
            until_threshold=arguments.threshold,
            join_mode=arguments.join_mode,
        )
    )
    level = _resolve_level(video, arguments.level)
    result = engine.evaluate_video(
        formula, video, level=level, database=database
    )
    level_name = video.level_names.get(level, str(level))
    print(
        similarity_table_text(
            result,
            f"{video.name} at level {level} ({level_name}):",
            ranked=arguments.ranked,
        )
    )
    if arguments.top > 0:
        print(f"\nTop {arguments.top} segments:")
        for rank, segment in enumerate(
            top_k_segments(result, arguments.top, video=video.name), start=1
        ):
            print(
                f"  {rank}. segment {segment.segment_id}  "
                f"{segment.actual:.3f}/{segment.maximum:g}"
            )
    return 0


def cmd_sql(arguments: argparse.Namespace) -> int:
    formula = parse(arguments.query)
    workload = perf_workload(arguments.size, extra_predicates=2)
    system = SQLRetrievalSystem()
    system.load_segments(arguments.size)
    for name, sim in workload.lists.items():
        system.load_atomic(name, sim)
    translation = system.translate(formula)
    print("-- generated SQL script")
    print(translation.script())
    if arguments.execute:
        result = system.evaluate(formula)
        print()
        print(similarity_table_text(result, "result:"))
    return 0


def cmd_datasets(arguments: argparse.Namespace) -> int:
    for key in sorted(_DATASETS):
        video_name, loader = _DATASETS[key]
        database = loader()
        video = database.get(video_name)
        levels = ", ".join(
            f"{level}={name}" for level, name in sorted(video.level_names.items())
        )
        atoms = database.atomic_names()
        extra = f"; atomics: {', '.join(atoms)}" if atoms else ""
        print(f"{key}: video {video.name!r}, levels [{levels}]{extra}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    handlers = {
        "classify": cmd_classify,
        "explain": cmd_explain,
        "run": cmd_run,
        "sql": cmd_sql,
        "datasets": cmd_datasets,
    }
    try:
        return handlers[arguments.command](arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
