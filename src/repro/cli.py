"""Command-line front end: parse, classify, and run HTL queries.

Examples::

    htl-query classify "exists x . eventually present(x)"
    htl-query run --dataset casablanca \\
        "atomic('Man-Woman') and eventually atomic('Moving-Train')"
    htl-query run --dataset western --level frame --top 3 "<formula>"
    htl-query sql "$P1 until $P2" --size 1000     # show generated SQL
    htl-query datasets
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.bench.reporting import similarity_table_text
from repro.core import resilience
from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.topk import top_k_across_videos, top_k_segments
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    HierarchyError,
    HTLError,
    HTLSyntaxError,
    HTLTypeError,
    IngestError,
    InjectedFaultError,
    InvalidIntervalError,
    InvalidSimilarityError,
    MetadataError,
    ModelError,
    ReproError,
    ResilienceError,
    ServeError,
    ServeRejected,
    ShardError,
    SignatureError,
    SimilarityListInvariantError,
    SQLCatalogError,
    SQLError,
    SQLExecutionError,
    SQLSyntaxError,
    StoreCorruptionError,
    StoreError,
    StoreVersionError,
    StoreWriteError,
    UnknownLevelError,
    UnsupportedFormulaError,
    WALCorruptionError,
    WorkloadError,
)
from repro.htl import parse, paper_class, pretty, skeleton_class
from repro.model.database import VideoDatabase
from repro.sqlbaseline.system import SQLRetrievalSystem
from repro.workloads.casablanca import casablanca_database
from repro.workloads.clips import clips_database
from repro.workloads.movies import example_database
from repro.workloads.synthetic import perf_workload

_DATASETS = {
    "casablanca": ("making-of-casablanca", casablanca_database),
    "western": ("western", example_database),
    "gulf-war": ("gulf-war", example_database),
    "clips": ("clips", clips_database),
}

#: Exit code for each error family — distinct, non-zero, and stable, so
#: scripts can branch on the failure kind without scraping stderr.  Code 2
#: is reserved by argparse for usage errors; the most specific class on an
#: exception's MRO wins (see :func:`exit_code_for`).
EXIT_CODES = {
    ReproError: 1,
    HTLError: 3,
    HTLSyntaxError: 4,
    HTLTypeError: 5,
    UnsupportedFormulaError: 6,
    ModelError: 7,
    HierarchyError: 8,
    UnknownLevelError: 9,
    MetadataError: 10,
    SQLError: 11,
    SQLSyntaxError: 12,
    SQLCatalogError: 13,
    SQLExecutionError: 14,
    InvalidIntervalError: 15,
    InvalidSimilarityError: 16,
    SimilarityListInvariantError: 17,
    WorkloadError: 18,
    ResilienceError: 19,
    BudgetExceededError: 20,
    CircuitOpenError: 21,
    InjectedFaultError: 22,
    StoreError: 23,
    StoreWriteError: 24,
    StoreCorruptionError: 25,
    StoreVersionError: 26,
    ShardError: 27,
    ServeError: 28,
    ServeRejected: 29,
    IngestError: 30,
    WALCorruptionError: 31,
    SignatureError: 32,
}

#: The conventional 128+SIGINT code: an interrupted run that drained
#: gracefully still reports "killed by Ctrl-C" to the calling shell.
EXIT_SIGINT = 130


def exit_code_for(error: ReproError) -> int:
    """The exit code of the most specific mapped class on the error's MRO."""
    for klass in type(error).__mro__:
        if klass in EXIT_CODES:
            return EXIT_CODES[klass]
    return 1


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def _level_argument(text: str) -> str:
    """A level is a positive number or a level name — validated up front."""
    if text.isdigit() and int(text) < 1:
        raise argparse.ArgumentTypeError(
            f"levels are numbered from 1, got {text}"
        )
    if not text:
        raise argparse.ArgumentTypeError("level name must be non-empty")
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="htl-query",
        description="Similarity-based retrieval of videos with HTL queries",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify = commands.add_parser(
        "classify", help="parse a query and report its formula class"
    )
    classify.add_argument("query", help="HTL query text")

    explain_cmd = commands.add_parser(
        "explain", help="show the evaluation plan for a query"
    )
    explain_cmd.add_argument("query", help="HTL query text")
    explain_cmd.add_argument(
        "--optimize",
        action="store_true",
        help="apply the rewrite rules before explaining",
    )
    explain_cmd.add_argument(
        "--plan",
        action="store_true",
        help="compile and show the cost-based query plan against a dataset "
        "(evaluation order, per-atom strategy, estimated vs. observed cost)",
    )
    explain_cmd.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="dataset whose index statistics the plan is built from "
        "(default: casablanca; only with --plan)",
    )
    explain_cmd.add_argument(
        "--level",
        default=None,
        type=_level_argument,
        help="level to plan the query at (default: 2; only with --plan)",
    )
    explain_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the plan as JSON (only with --plan)",
    )

    run = commands.add_parser("run", help="evaluate a query on a dataset")
    run.add_argument("query", help="HTL query text")
    run.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="built-in dataset (default: casablanca)",
    )
    run.add_argument(
        "--level",
        default=None,
        type=_level_argument,
        help="level name or number to assert the query at (default: 2)",
    )
    run.add_argument(
        "--top",
        type=_nonnegative_int,
        default=0,
        help="also print the top-k segments",
    )
    run.add_argument(
        "--threshold",
        type=_positive_float,
        default=0.5,
        help="until threshold on fractional similarity (default: 0.5)",
    )
    run.add_argument(
        "--join-mode",
        choices=("inner", "outer"),
        default="inner",
        help="paper's inner join or definitional outer join",
    )
    run.add_argument(
        "--ranked", action="store_true", help="order output by similarity"
    )
    run.add_argument(
        "--across",
        action="store_true",
        help="rank the top segments across every video of the dataset "
        "(requires --top)",
    )
    run.add_argument(
        "--parallel",
        type=_positive_int,
        default=None,
        help="evaluate videos on this many threads (with --across)",
    )
    run.add_argument(
        "--lenient",
        action="store_true",
        help="best-effort mode: report failed videos instead of aborting "
        "(with --across)",
    )
    run.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="partition the dataset into this many shards and run the "
        "query scatter-gather (with --across)",
    )
    run.add_argument(
        "--shard-dir",
        default=None,
        help="query a sharded store layout written by 'shard split' "
        "instead of a built-in dataset (with --across)",
    )
    run.add_argument(
        "--by-example",
        dest="by_example",
        action="append",
        default=None,
        metavar="[NAME=]VIDEO:FIRST-LAST",
        help="define a query clip from stored segments: the content "
        "signatures of segments FIRST..LAST (1-based, at the query "
        "level) of VIDEO become the windows the query's "
        "looks_like(NAME, theta) atoms score against (NAME defaults "
        "to 'example'; repeatable)",
    )
    run.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=None,
        help="abort the query after this many wall-clock milliseconds",
    )
    run.add_argument(
        "--max-steps",
        type=_positive_int,
        default=None,
        help="abort the query after this many cooperative work steps",
    )

    trace_cmd = commands.add_parser(
        "trace",
        help="run a query with per-span profiling (the profiled twin of "
        "explain)",
    )
    trace_cmd.add_argument("query", help="HTL query text")
    trace_cmd.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="built-in dataset (default: casablanca)",
    )
    trace_cmd.add_argument(
        "--level",
        default=None,
        type=_level_argument,
        help="level name or number to assert the query at (default: 2)",
    )
    trace_cmd.add_argument(
        "--top",
        type=_positive_int,
        default=5,
        help="rank this many segments across the dataset (default: 5)",
    )
    trace_cmd.add_argument(
        "--parallel",
        type=_positive_int,
        default=None,
        help="evaluate videos on this many threads",
    )
    trace_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the trace and metrics as JSON instead of text",
    )

    sql = commands.add_parser(
        "sql", help="show and optionally execute the SQL translation"
    )
    sql.add_argument("query", help="type (1) HTL query over $P1, $P2, ...")
    sql.add_argument(
        "--size", type=int, default=1000, help="synthetic workload size"
    )
    sql.add_argument(
        "--execute",
        action="store_true",
        help="run the script on the mini engine and print the result",
    )

    commands.add_parser("datasets", help="list built-in datasets")

    store_cmd = commands.add_parser(
        "store", help="manage the crash-safe on-disk snapshot store"
    )
    store_actions = store_cmd.add_subparsers(
        dest="store_command", required=True
    )

    def _store_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir",
            dest="store_dir",
            required=True,
            help="store root directory",
        )

    store_save = store_actions.add_parser(
        "save", help="snapshot a dataset into the store"
    )
    _store_common(store_save)
    store_save.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="built-in dataset to snapshot (default: casablanca)",
    )
    store_save.add_argument(
        "--keep",
        type=_positive_int,
        default=2,
        help="snapshots to retain after the save (default: 2)",
    )

    store_load = store_actions.add_parser(
        "load", help="load the newest intact snapshot (with recovery)"
    )
    _store_common(store_load)
    store_load.add_argument(
        "--no-verify",
        action="store_true",
        help="skip digest verification (structural checks remain)",
    )

    store_verify = store_actions.add_parser(
        "verify", help="read-only integrity check of every snapshot"
    )
    _store_common(store_verify)

    store_repair = store_actions.add_parser(
        "repair", help="quarantine damage and rewrite the manifest"
    )
    _store_common(store_repair)
    store_repair.add_argument(
        "--keep",
        type=_positive_int,
        default=2,
        help="intact snapshots to retain (default: 2)",
    )

    shard_cmd = commands.add_parser(
        "shard", help="manage sharded corpus layouts (scatter-gather top-k)"
    )
    shard_actions = shard_cmd.add_subparsers(
        dest="shard_command", required=True
    )

    shard_split = shard_actions.add_parser(
        "split", help="partition a dataset into N per-shard stores"
    )
    shard_split.add_argument(
        "--dir",
        dest="shard_dir",
        required=True,
        help="layout root directory (holds SHARDS.json + shard stores)",
    )
    shard_split.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="built-in dataset to partition (default: casablanca)",
    )
    shard_split.add_argument(
        "--shards",
        type=_positive_int,
        required=True,
        help="number of shards to split into",
    )
    shard_split.add_argument(
        "--keep",
        type=_positive_int,
        default=2,
        help="snapshots to retain per shard store (default: 2)",
    )

    shard_info = shard_actions.add_parser(
        "info", help="describe a shard layout (and optionally its indices)"
    )
    shard_info.add_argument(
        "--dir",
        dest="shard_dir",
        required=True,
        help="layout root directory",
    )
    shard_info.add_argument(
        "--stats",
        action="store_true",
        help="load every shard and print per-video metadata-index stats",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="run queries through the concurrent retrieval service "
        "(admission control, SLA budgets, graceful drain)",
    )
    serve_cmd.add_argument(
        "queries",
        nargs="*",
        help="query text, optionally prefixed 'interactive:' / "
        "'standard:' / 'batch:'; reads one query per stdin line "
        "when omitted",
    )
    serve_cmd.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default="casablanca",
        help="built-in dataset to serve (default: casablanca)",
    )
    serve_cmd.add_argument(
        "--shard-dir",
        default=None,
        help="serve a sharded store layout instead of a built-in dataset",
    )
    serve_cmd.add_argument(
        "--store",
        dest="store_dir",
        default=None,
        help="serve the newest snapshot of a store directory",
    )
    serve_cmd.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="warm pooled workers (default: 2)",
    )
    serve_cmd.add_argument(
        "--top",
        type=_positive_int,
        default=5,
        help="segments per ranking (default: 5)",
    )
    serve_cmd.add_argument(
        "--level",
        type=_positive_int,
        default=2,
        help="hierarchy level to rank at (default: 2)",
    )
    serve_cmd.add_argument(
        "--sla",
        choices=("interactive", "standard", "batch"),
        default="standard",
        help="latency class for unprefixed queries (default: standard)",
    )
    serve_cmd.add_argument(
        "--sla-scale",
        type=_positive_float,
        default=1.0,
        help="scale every class deadline by this factor (default: 1.0)",
    )
    serve_cmd.add_argument(
        "--strict",
        action="store_true",
        help="strict per-request semantics (no partial rankings)",
    )
    serve_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON payload per result plus a stats payload",
    )

    ingest_cmd = commands.add_parser(
        "ingest",
        help="crash-safe streaming ingestion (WAL-backed appends, "
        "checkpoints, recovery)",
    )
    ingest_actions = ingest_cmd.add_subparsers(
        dest="ingest_command", required=True
    )

    def _ingest_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir",
            dest="ingest_dir",
            required=True,
            help="ingest root directory (base/, wal.log, deltas/)",
        )

    ingest_init = ingest_actions.add_parser(
        "init", help="create an ingest directory seeded from a dataset"
    )
    _ingest_common(ingest_init)
    ingest_init.add_argument(
        "--dataset",
        choices=sorted(_DATASETS),
        default=None,
        help="built-in dataset to seed the base snapshot with "
        "(default: an empty corpus)",
    )

    ingest_append = ingest_actions.add_parser(
        "append", help="log and apply operations from a JSON ops file"
    )
    _ingest_common(ingest_append)
    ingest_append.add_argument(
        "--ops",
        dest="ops_file",
        required=True,
        help="JSON file holding a list of ingest-op documents",
    )
    ingest_append.add_argument(
        "--batch",
        type=_positive_int,
        default=None,
        help="fsync after every N records instead of once at the end",
    )

    ingest_checkpoint = ingest_actions.add_parser(
        "checkpoint", help="fold the committed WAL into a delta snapshot"
    )
    _ingest_common(ingest_checkpoint)
    ingest_checkpoint.add_argument(
        "--full",
        action="store_true",
        help="merge the whole delta chain into one artifact",
    )

    ingest_recover = ingest_actions.add_parser(
        "recover", help="replay the committed state and report provenance"
    )
    _ingest_common(ingest_recover)
    ingest_recover.add_argument(
        "--no-verify",
        action="store_true",
        help="skip digest verification (structural checks remain)",
    )
    return parser


def _resolve_level(video, level_argument: Optional[str]) -> int:
    if level_argument is None:
        return min(2, video.n_levels)
    if level_argument.isdigit():
        return int(level_argument)
    return video.level_of(level_argument)


def cmd_classify(arguments: argparse.Namespace) -> int:
    formula = parse(arguments.query)
    print(f"parsed:    {pretty(formula)}")
    print(f"paper class:    {paper_class(formula).name}")
    print(f"skeleton class: {skeleton_class(formula).name}")
    return 0


def cmd_explain(arguments: argparse.Namespace) -> int:
    from repro.core.explain import explain
    from repro.core.optimizer import optimize

    formula = parse(arguments.query)
    if arguments.optimize:
        optimized = optimize(formula)
        if optimized != formula:
            if not arguments.json:
                print(f"rewritten: {pretty(optimized)}\n")
        formula = optimized
    if arguments.plan:
        return _explain_plan(arguments, formula)
    print(explain(formula))
    return 0


def _explain_plan(arguments: argparse.Namespace, formula) -> int:
    """Compile the query's cost-based plan against a dataset and print it.

    The query is also evaluated once so the report can put the observed
    wall-clock next to the cost model's estimate — the pair the adaptive
    re-planner compares.
    """
    import json

    video_name, loader = _DATASETS[arguments.dataset]
    database: VideoDatabase = loader()
    video = database.get(video_name)
    level = _resolve_level(video, arguments.level)
    engine = RetrievalEngine()
    pictures = video.root.pictures_at_level(level)
    plan = engine.planner.plan_for(
        formula, pictures, level, engine.config, generation=database.generation
    )
    engine.evaluate_video(formula, video, level=level, database=database)
    if arguments.json:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"plan for {video_name!r} at level {level}:")
    print(plan.describe())
    stats = engine.planner.stats
    print(
        f"planner: {stats.plans_built} plan(s) built, "
        f"{stats.cache_hits} cache hit(s), "
        f"{stats.support_probes} support probe(s)"
    )
    return 0


def _run_budget(arguments: argparse.Namespace) -> Optional[resilience.QueryBudget]:
    if arguments.deadline_ms is None and arguments.max_steps is None:
        return None
    return resilience.QueryBudget(
        deadline_ms=arguments.deadline_ms, max_steps=arguments.max_steps
    )


def _run_across(
    arguments: argparse.Namespace,
    engine: RetrievalEngine,
    formula,
    database: VideoDatabase,
    level: int,
) -> int:
    results = top_k_across_videos(
        engine,
        formula,
        database,
        k=arguments.top,
        level=level,
        parallelism=arguments.parallel,
        budget=_run_budget(arguments),
        lenient=arguments.lenient,
    )
    return _print_across(arguments, results)


def _run_across_sharded(
    arguments: argparse.Namespace,
    engine: RetrievalEngine,
    formula,
    corpus,
    level: int,
) -> int:
    results = corpus.top_k(
        engine,
        formula,
        arguments.top,
        level=level,
        parallelism=arguments.parallel,
        budget=_run_budget(arguments),
        lenient=arguments.lenient,
    )
    print(f"scatter-gather over {corpus.n_shards} shard(s)")
    return _print_across(arguments, results)


def _print_across(arguments: argparse.Namespace, results) -> int:
    n_videos = len(results.outcomes)
    print(f"Top {arguments.top} segments across {n_videos} videos:")
    for rank, segment in enumerate(results, start=1):
        print(
            f"  {rank}. {segment.video} segment {segment.segment_id}  "
            f"{segment.actual:.3f}/{segment.maximum:g}"
        )
    if results.partial:
        print("\npartial result; degraded videos:")
        for outcome in results.outcomes:
            if outcome.degraded:
                print(f"  {outcome.video}: {outcome.status} ({outcome.error})")
    return 0


def _example_clips(
    specs: List[str], database: VideoDatabase, level_argument: Optional[str]
) -> Dict[str, tuple]:
    """Named query clips from ``[NAME=]VIDEO:FIRST-LAST`` specs.

    Each spec slices the named video's segments (1-based, inclusive, at
    the query level) and takes their content signatures as the clip's
    windows.  Malformed specs, unknown videos, out-of-range slices, and
    signature-less segments all raise a typed
    :class:`~repro.errors.SignatureError` (exit code 32).
    """
    from repro.pictures.signature import clip_from_segments

    clips: Dict[str, tuple] = {}
    for spec in specs:
        head, equals, rest = spec.partition("=")
        name, body = (head, rest) if equals else ("example", spec)
        video_name, colon, span = body.partition(":")
        first_text, dash, last_text = span.partition("-")
        try:
            first = int(first_text)
            last = int(last_text) if dash else first
        except ValueError:
            first = last = 0
        if not colon or not video_name or not name or first < 1:
            raise SignatureError(
                f"malformed --by-example {spec!r}; expected "
                "[NAME=]VIDEO:FIRST-LAST with 1-based segment numbers"
            )
        if video_name not in database:
            raise SignatureError(
                f"--by-example {spec!r} names unknown video "
                f"{video_name!r}; dataset has: "
                + ", ".join(sorted(database.names()))
            )
        video = database.get(video_name)
        level = _resolve_level(video, level_argument)
        nodes = video.nodes_at_level(level)
        if last < first or last > len(nodes):
            raise SignatureError(
                f"--by-example {spec!r} selects segments {first}-{last}; "
                f"{video_name!r} has {len(nodes)} at level {level}"
            )
        clips[name] = clip_from_segments(
            [node.metadata for node in nodes[first - 1 : last]]
        )
    return clips


def cmd_run(arguments: argparse.Namespace) -> int:
    formula = parse(arguments.query)
    engine = RetrievalEngine(
        EngineConfig(
            until_threshold=arguments.threshold,
            join_mode=arguments.join_mode,
        )
    )
    if arguments.shard_dir is not None:
        # A layout on disk replaces the built-in dataset entirely; there
        # is no single video to resolve level names against, so only
        # numeric levels are accepted (validated in main()).
        from repro.shard import ShardedCorpus

        corpus = ShardedCorpus.from_directory(arguments.shard_dir)
        level = 2 if arguments.level is None else int(arguments.level)
        return _run_across_sharded(arguments, engine, formula, corpus, level)
    video_name, loader = _DATASETS[arguments.dataset]
    database: VideoDatabase = loader()
    video = database.get(video_name)
    level = _resolve_level(video, arguments.level)
    from repro.pictures.signature import resolve_clips, unresolved_clip_names

    if arguments.by_example or unresolved_clip_names(formula):
        # Inline the example segments' signatures into the query's
        # looks_like atoms; a clip reference with no --by-example
        # definition raises a SignatureError naming the known clips.
        formula = resolve_clips(
            formula,
            _example_clips(
                arguments.by_example or [], database, arguments.level
            ),
        )
    if arguments.shards is not None:
        from repro.shard import ShardedCorpus

        corpus = ShardedCorpus.from_database(database, arguments.shards)
        return _run_across_sharded(arguments, engine, formula, corpus, level)
    if arguments.across:
        return _run_across(arguments, engine, formula, database, level)
    budget = _run_budget(arguments)
    if budget is not None:
        with resilience.scope(budget=budget):
            result = engine.evaluate_video(
                formula, video, level=level, database=database
            )
    else:
        result = engine.evaluate_video(
            formula, video, level=level, database=database
        )
    level_name = video.level_names.get(level, str(level))
    print(
        similarity_table_text(
            result,
            f"{video.name} at level {level} ({level_name}):",
            ranked=arguments.ranked,
        )
    )
    if arguments.top > 0:
        print(f"\nTop {arguments.top} segments:")
        for rank, segment in enumerate(
            top_k_segments(result, arguments.top, video=video.name), start=1
        ):
            print(
                f"  {rank}. segment {segment.segment_id}  "
                f"{segment.actual:.3f}/{segment.maximum:g}"
            )
    return 0


def cmd_trace(arguments: argparse.Namespace) -> int:
    import json

    from repro.bench.reporting import observability_payload
    from repro.bench.stages import latency_report_text, stage_report_text
    from repro.core import instrument, trace

    video_name, loader = _DATASETS[arguments.dataset]
    database: VideoDatabase = loader()
    video = database.get(video_name)
    formula = parse(arguments.query)
    engine = RetrievalEngine()
    level = _resolve_level(video, arguments.level)
    was_enabled = instrument.is_enabled()
    instrument.enable()
    try:
        results = top_k_across_videos(
            engine,
            formula,
            database,
            k=arguments.top,
            level=level,
            parallelism=arguments.parallel,
            profile=True,
        )
        if arguments.json:
            print(
                json.dumps(
                    observability_payload(results.profile),
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(trace.render_text(results.profile))
        print()
        print(stage_report_text())
        latency = latency_report_text()
        if latency:
            print()
            print(latency)
    finally:
        if not was_enabled:
            instrument.disable()
    print(f"\nTop {arguments.top} segments across "
          f"{len(results.outcomes)} videos:")
    for rank, segment in enumerate(results, start=1):
        print(
            f"  {rank}. {segment.video} segment {segment.segment_id}  "
            f"{segment.actual:.3f}/{segment.maximum:g}"
        )
    return 0


def cmd_sql(arguments: argparse.Namespace) -> int:
    formula = parse(arguments.query)
    workload = perf_workload(arguments.size, extra_predicates=2)
    system = SQLRetrievalSystem()
    system.load_segments(arguments.size)
    for name, sim in workload.lists.items():
        system.load_atomic(name, sim)
    translation = system.translate(formula)
    print("-- generated SQL script")
    print(translation.script())
    if arguments.execute:
        result = system.evaluate(formula)
        print()
        print(similarity_table_text(result, "result:"))
    return 0


def cmd_store(arguments: argparse.Namespace) -> int:
    from repro.store import Store

    store = Store(arguments.store_dir, keep=getattr(arguments, "keep", 2))
    if arguments.store_command == "save":
        __, loader = _DATASETS[arguments.dataset]
        info = store.save(loader())
        print(f"saved {info.snapshot_id} at {info.path}")
        for name in sorted(info.artifacts):
            entry = info.artifacts[name]
            print(f"  {name}  {entry['bytes']} bytes  {entry['sha256'][:12]}")
        if info.pruned:
            print(f"pruned: {', '.join(info.pruned)}")
        return 0
    if arguments.store_command == "load":
        loaded = store.load(verify=not arguments.no_verify)
        database = loaded.database
        print(
            f"loaded {loaded.snapshot_id}"
            f" ({'verified' if loaded.verified else 'unverified'}):"
            f" {len(database)} video(s),"
            f" {len(database.atomic_names())} atomic predicate(s)"
        )
        for action in loaded.actions:
            where = (
                f"{action.snapshot}/{action.artifact}"
                if action.snapshot
                else action.artifact
            )
            print(f"  recovery: {action.kind} {where}  {action.detail}")
        return 0
    if arguments.store_command == "verify":
        report = store.verify()
        for status in report.statuses:
            marker = "ok" if not status.damaged else status.status
            print(f"  {status.snapshot}/{status.artifact}: {marker}")
        for name in report.unreferenced:
            print(f"  unreferenced snapshot: {name}")
        for stray in report.stray_files:
            print(f"  stray temp file: {stray}")
        if not report.manifest_ok:
            print(f"  manifest: {report.manifest_detail}")
        print(f"store {'OK' if report.ok else 'DAMAGED'}")
        return 0 if report.ok else 1
    outcome = store.repair()
    for action in outcome.actions:
        print(f"  quarantined: {action.quarantined_to or action.artifact}")
    print(
        f"repaired: current={outcome.current}, "
        f"retained=[{', '.join(outcome.retained)}], "
        f"dropped=[{', '.join(outcome.dropped)}]"
    )
    return 0


def cmd_shard(arguments: argparse.Namespace) -> int:
    from repro.store import load_layout, save_sharded
    from repro.store.store import default_level

    if arguments.shard_command == "split":
        __, loader = _DATASETS[arguments.dataset]
        layout = save_sharded(
            loader(),
            arguments.shard_dir,
            arguments.shards,
            keep=arguments.keep,
        )
        print(
            f"split {len(layout.video_names)} video(s) into "
            f"{layout.n_shards} shard(s) at {layout.root}"
        )
        for spec in layout.shards:
            owned = ", ".join(spec.videos) if spec.videos else "(empty)"
            print(f"  {spec.shard_id}: {owned}")
        return 0
    layout = load_layout(arguments.shard_dir)
    print(
        f"layout at {layout.root}: scheme {layout.scheme}, "
        f"{layout.n_shards} shard(s), {len(layout.video_names)} video(s)"
    )
    for spec in layout.shards:
        owned = ", ".join(spec.videos) if spec.videos else "(empty)"
        print(f"  {spec.shard_id} ({spec.path}): {owned}")
        if not arguments.stats:
            continue
        loaded = layout.store(spec).load()
        for name in spec.videos:
            video = loaded.database.get(name)
            level = default_level(video)
            stats = video.root.pictures_at_level(level).index.stats()
            postings = ", ".join(
                f"{family}={entry['keys']}/{entry['entries']}"
                for family, entry in sorted(stats["postings"].items())
                if entry["keys"]
            )
            print(
                f"    {name}: {stats['n_segments']} segment(s), "
                f"{stats['n_profiles']} profile(s) "
                f"(dedup {stats['profile_dedup']:.0%})"
                + (f"; postings keys/entries: {postings}" if postings else "")
            )
    return 0


def _serve_pool(arguments: argparse.Namespace):
    from repro.serve import EnginePool

    if arguments.shard_dir is not None and arguments.store_dir is not None:
        raise ServeError("--shard-dir and --store are mutually exclusive")
    if arguments.shard_dir is not None:
        return EnginePool.from_shard_layout(
            arguments.shard_dir, arguments.workers
        )
    if arguments.store_dir is not None:
        return EnginePool.from_store(arguments.store_dir, arguments.workers)
    __, loader = _DATASETS[arguments.dataset]
    return EnginePool.from_database(loader(), arguments.workers)


def _serve_lines(arguments: argparse.Namespace):
    """Queries from the command line, or one per stdin line."""
    if arguments.queries:
        yield from arguments.queries
        return
    for line in sys.stdin:
        line = line.strip()
        if line and not line.startswith("#"):
            yield line


def _split_sla(line: str, default: str, classes) -> tuple:
    """Peel an optional 'class:' prefix off a query line."""
    head, sep, rest = line.partition(":")
    if sep and head.strip() in classes:
        return head.strip(), rest.strip()
    return default, line


def _print_serve_result(text: str, result, as_json: bool) -> None:
    import json

    if as_json:
        print(json.dumps({"query": text, **result.to_payload()}))
        return
    tag = f"#{result.request_id} [{result.sla}]"
    timing = (
        f"{result.total_ms:.0f}ms "
        f"(queue {result.queue_ms:.0f}ms + service {result.service_ms:.0f}ms)"
    )
    if result.status == "completed":
        ranking = result.topk
        note = " (degraded)" if result.degraded else ""
        print(
            f"{tag} completed{note} in {timing} on {result.worker}: "
            f"{len(ranking)} segment(s)"
        )
        for rank, segment in enumerate(ranking, start=1):
            print(
                f"    {rank}. {segment.video} segment {segment.segment_id}  "
                f"{segment.actual:.3f}/{segment.maximum:g}"
            )
    elif result.status == "shed":
        print(
            f"{tag} shed under load after {result.queue_ms:.0f}ms queued; "
            f"retry after {result.retry_after_ms:.0f}ms"
        )
    else:
        print(f"{tag} timed out after {timing}")


def cmd_serve(arguments: argparse.Namespace) -> int:
    import json

    from repro.serve import (
        QueryRequest,
        RetrievalServer,
        default_classes,
    )

    classes = default_classes(scale=arguments.sla_scale)
    server = RetrievalServer(_serve_pool(arguments), classes=classes)
    server.start(level=arguments.level)
    print(
        f"serving with {server.pool.n_workers} warm worker(s) over "
        f"{len(server.pool.video_names())} video(s); "
        f"SLA deadlines "
        + ", ".join(
            f"{sla.name}={sla.deadline_ms:g}ms"
            for sla in sorted(classes.values(), key=lambda c: -c.priority)
        ),
        file=sys.stderr,
    )
    tickets = []
    printed = 0
    interrupted = False
    try:
        for line in _serve_lines(arguments):
            sla, text = _split_sla(line, arguments.sla, classes)
            try:
                ticket = server.submit(
                    QueryRequest(
                        parse(text),
                        arguments.top,
                        level=arguments.level,
                        sla=sla,
                        lenient=not arguments.strict,
                    )
                )
            except ServeRejected as rejection:
                print(
                    f"rejected [{sla}] {text!r}: {rejection.reason}; "
                    f"retry after {rejection.retry_after_ms:.0f}ms",
                    file=sys.stderr,
                )
                continue
            tickets.append((text, ticket))
        for text, ticket in tickets:
            _print_serve_result(text, ticket.result(None), arguments.json)
            printed += 1
    except KeyboardInterrupt:
        interrupted = True
        print("\ninterrupted: draining in-flight requests...", file=sys.stderr)
    finally:
        stats = server.close()
    # After close() every admitted ticket is terminal (the conservation
    # law), so an interrupted run still reports every outcome.
    for text, ticket in tickets[printed:]:
        _print_serve_result(text, ticket.result(0.0), arguments.json)
    if arguments.json:
        print(json.dumps({"stats": stats.to_payload()}))
    else:
        rejected = stats.rejected_total
        print(
            f"served {stats.admitted} request(s): {stats.completed} "
            f"completed ({stats.degraded} degraded), {stats.timed_out} "
            f"timed out, {stats.shed} shed; {rejected} rejected at "
            f"admission",
            file=sys.stderr,
        )
    if not stats.conserved:  # pragma: no cover - would be a server bug
        print("error: request ledger does not balance", file=sys.stderr)
        return EXIT_CODES[ServeError]
    return EXIT_SIGINT if interrupted else 0


def cmd_datasets(arguments: argparse.Namespace) -> int:
    for key in sorted(_DATASETS):
        video_name, loader = _DATASETS[key]
        database = loader()
        video = database.get(video_name)
        levels = ", ".join(
            f"{level}={name}" for level, name in sorted(video.level_names.items())
        )
        atoms = database.atomic_names()
        extra = f"; atomics: {', '.join(atoms)}" if atoms else ""
        print(f"{key}: video {video.name!r}, levels [{levels}]{extra}")
    return 0


def cmd_ingest(arguments: argparse.Namespace) -> int:
    import json

    from repro.ingest import Ingester, decode_op, initialise, recover

    if arguments.ingest_command == "init":
        if arguments.dataset is not None:
            __, loader = _DATASETS[arguments.dataset]
            database = loader()
        else:
            database = VideoDatabase()
        with initialise(arguments.ingest_dir, database) as ingester:
            print(
                f"initialised ingest directory at {ingester.layout.root}: "
                f"{len(ingester.database)} video(s) in the base snapshot"
            )
        return 0
    if arguments.ingest_command == "append":
        try:
            with open(arguments.ops_file, "r", encoding="utf-8") as handle:
                documents = json.load(handle)
        except OSError as error:
            raise IngestError(
                f"cannot read ops file: {error}", path=arguments.ops_file
            ) from error
        except ValueError as error:
            raise IngestError(
                f"ops file is not JSON: {error}", path=arguments.ops_file
            ) from error
        if not isinstance(documents, list):
            raise IngestError(
                "ops file must hold a JSON list of ingest-op documents",
                path=arguments.ops_file,
            )
        operations = [decode_op(document) for document in documents]
        with Ingester(
            arguments.ingest_dir, auto_commit=arguments.batch
        ) as ingester:
            first = ingester.last_sequence + 1
            for op in operations:
                ingester.submit(op)
            batch = ingester.commit()
            print(
                f"appended {len(operations)} record(s) "
                f"(sequences {first}..{ingester.last_sequence}), "
                f"touching {len(batch) or len(ingester.dirty)} video(s)"
            )
            print(f"dirty since last checkpoint: {', '.join(ingester.dirty)}")
        return 0
    if arguments.ingest_command == "checkpoint":
        with Ingester(arguments.ingest_dir) as ingester:
            info = ingester.checkpoint(full=arguments.full)
            if info is None:
                print("nothing to checkpoint: no videos dirty")
                return 0
            kind = "full" if info.full else "incremental"
            print(
                f"checkpointed ({kind}) {info.delta}: "
                f"{len(info.videos)} video(s) through WAL sequence "
                f"{info.wal_through}"
            )
            if info.superseded:
                print(f"superseded: {', '.join(info.superseded)}")
        return 0
    state = recover(arguments.ingest_dir, verify=not arguments.no_verify)
    state.wal.close()
    print(
        f"recovered {state.snapshot_id}"
        f" ({'verified' if state.verified else 'unverified'}):"
        f" {len(state.database)} video(s),"
        f" {len(state.deltas)} delta(s),"
        f" {state.replayed} WAL record(s) replayed,"
        f" {state.skipped} skipped"
    )
    for action in state.actions:
        print(f"  {action}")
    for path in state.quarantined:
        print(f"  quarantined: {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "run":
        # Cross-flag constraints argparse cannot express; usage errors all
        # exit 2, before any dataset is loaded or query parsed.
        if arguments.across and arguments.top < 1:
            parser.error("--across requires --top >= 1")
        if arguments.parallel is not None and not arguments.across:
            parser.error("--parallel requires --across")
        if arguments.lenient and not arguments.across:
            parser.error("--lenient requires --across")
        if arguments.shards is not None and arguments.shard_dir is not None:
            parser.error("--shards and --shard-dir are mutually exclusive")
        if arguments.by_example and arguments.shard_dir is not None:
            parser.error(
                "--by-example requires a built-in dataset (not --shard-dir)"
            )
        if (
            arguments.shards is not None or arguments.shard_dir is not None
        ) and not arguments.across:
            parser.error("--shards/--shard-dir require --across")
        if (
            arguments.shard_dir is not None
            and arguments.level is not None
            and not arguments.level.isdigit()
        ):
            parser.error("--shard-dir requires a numeric --level")
    handlers = {
        "classify": cmd_classify,
        "explain": cmd_explain,
        "run": cmd_run,
        "trace": cmd_trace,
        "sql": cmd_sql,
        "datasets": cmd_datasets,
        "store": cmd_store,
        "shard": cmd_shard,
        "serve": cmd_serve,
        "ingest": cmd_ingest,
    }
    try:
        return handlers[arguments.command](arguments)
    except KeyboardInterrupt:
        # Commands that can drain do so and return EXIT_SIGINT
        # themselves; this backstop keeps a Ctrl-C anywhere else from
        # ending in a traceback.
        print("interrupted", file=sys.stderr)
        return EXIT_SIGINT
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
