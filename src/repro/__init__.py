"""Similarity-based retrieval of videos.

A full reproduction of Sistla, Yu & Venkatasubrahmanian, "Similarity Based
Retrieval of Videos" (ICDE 1997): the HTL query language, its similarity
semantics, the direct interval-list retrieval algorithms, the underlying
picture-retrieval substrate, and the SQL-based baseline the paper compares
against.

Quickstart::

    from repro import RetrievalEngine, parse
    from repro.workloads.casablanca import casablanca_database

    database = casablanca_database()
    engine = RetrievalEngine()
    query = parse("atomic('Man-Woman') and eventually atomic('Moving-Train')")
    result = engine.evaluate_video(
        query, database.get("making-of-casablanca"), database=database
    )
"""

from repro.core import (
    EngineConfig,
    EvaluationCache,
    QueryBudget,
    ResiliencePolicy,
    RetrievalEngine,
    SimilarityList,
    SimilarityValue,
    TopKResult,
    top_k_across_videos,
    top_k_segments,
)
from repro.htl import FormulaClass, parse, pretty
from repro.model import Video, VideoDatabase, flat_video

__version__ = "1.0.0"

__all__ = [
    "RetrievalEngine",
    "EngineConfig",
    "EvaluationCache",
    "SimilarityList",
    "SimilarityValue",
    "parse",
    "pretty",
    "FormulaClass",
    "Video",
    "VideoDatabase",
    "flat_video",
    "top_k_segments",
    "top_k_across_videos",
    "TopKResult",
    "QueryBudget",
    "ResiliencePolicy",
    "__version__",
]
