"""Deterministic fault injection for the resilience layer (DESIGN.md §8).

The production code of :mod:`repro.core.resilience` exposes named fault
sites — index lookups, atom scoring, list merges, top-k workers — that
cost one global ``None`` check when no injector is installed.  This
module is the other half: a seeded :class:`FaultInjector` that decides,
reproducibly, at which visits to a site to raise a typed error, sleep, or
hand back a corrupted similarity list.

Chaos tests drive it through the :func:`inject` context manager::

    with inject(FaultSpec(resilience.SITE_ATOM_SCORE), seed=1997) as chaos:
        result = top_k_across_videos(engine, query, database, k=5,
                                     lenient=True)
    assert chaos.injected  # the run really was perturbed

Determinism: the injector draws from one ``random.Random(seed)`` in site
visit order, so a serial run replays exactly under the same seed.  Under
``parallelism >= 2`` the visit order races; chaos properties asserted
over parallel runs must therefore be order-independent ("never a silently
wrong ranking"), not sequence-exact.

Corruption never fabricates a plausible list: :func:`corrupt_similarity_list`
always builds an *invariant-violating* one through the public
:meth:`~repro.core.simlist.SimilarityList.from_raw`.  With the invariant
gate on (the test suite's default) the violation raises right at the
site; with the gate off it is caught by the trust-boundary
``validate()`` call before ``top_k_across_videos`` streams the list into
the shared heap.  Either way the corruption surfaces as a typed
:class:`~repro.errors.SimilarityListInvariantError`, never as a wrong
answer.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core import instrument, resilience, trace
from repro.core.intervals import Interval
from repro.core.simlist import SimEntry, SimilarityList
from repro.errors import InjectedFaultError

#: Injection modes.
RAISE = "raise"
DELAY = "delay"
CORRUPT = "corrupt"
#: A partial write: the site receives a strict prefix of the bytes it
#: meant to write and then dies (the caller raises after flushing the
#: prefix).  This is how the WAL torn-tail tests put *real* truncated
#: records on disk instead of merely corrupted whole records.
SHORT_WRITE = "short_write"

MODES = (RAISE, DELAY, CORRUPT, SHORT_WRITE)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: where, what kind, how often.

    ``rate`` is the per-visit probability of firing (1.0 fires on every
    visit); ``max_faults`` caps the total number of firings so a run can
    be perturbed without being starved.  ``skip`` makes the first N
    visits of the site immune, which is how the store's crash-recovery
    sweep aims a single fault at the k-th write step of a save.
    ``delay_ms`` applies to :data:`DELAY` mode only — it burns real
    wall-clock, which is how deadline tests force a timeout at a precise
    site.
    """

    site: str
    mode: str = RAISE
    rate: float = 1.0
    max_faults: Optional[int] = None
    skip: int = 0
    delay_ms: float = 1.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in resilience.FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; registered sites: "
                f"{', '.join(resilience.FAULT_SITES)}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; one of {', '.join(MODES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")


def corrupt_similarity_list(
    sim: SimilarityList, rng: random.Random
) -> SimilarityList:
    """An invariant-violating variant of ``sim`` (see module docstring).

    Picks one of three violations — overlapping intervals, a negative
    actual value, an actual above the list maximum — so the corrupted
    list is guaranteed to fail
    :meth:`~repro.core.simlist.SimilarityList.validate`.
    """
    entries: List[SimEntry] = list(sim.entries)
    if not entries:
        return SimilarityList.from_raw(
            [SimEntry(Interval(1, 1), -1.0)], sim.maximum
        )
    first = entries[0]
    choice = rng.randrange(3)
    if choice == 0:
        bad = [first] + entries  # first interval overlaps itself
    elif choice == 1:
        bad = [SimEntry(first.interval, -abs(first.actual))] + entries[1:]
    else:
        bad = [
            SimEntry(first.interval, sim.maximum * 2.0 + 1.0)
        ] + entries[1:]
    return SimilarityList.from_raw(bad, sim.maximum)


def corrupt_bytes(data: bytes, rng: random.Random) -> bytes:
    """A damaged variant of ``data``: bit flip, truncation, or garbage.

    Models the disk failures the store must detect (DESIGN.md §9) —
    single-bit rot, a torn/short read, and an overwritten region.  The
    result always differs from the input, so a checksummed read is
    guaranteed to notice.
    """
    if not data:
        return b"\x00"
    choice = rng.randrange(3)
    if choice == 0:  # flip one bit
        position = rng.randrange(len(data))
        flipped = data[position] ^ (1 << rng.randrange(8))
        return data[:position] + bytes([flipped]) + data[position + 1 :]
    if choice == 1:  # truncate (torn write / short read)
        return data[: rng.randrange(len(data))]
    position = rng.randrange(len(data))  # overwrite a region with garbage
    garbage = bytes(rng.randrange(256) for __ in range(8))
    damaged = data[:position] + garbage + data[position + 8 :]
    return damaged if damaged != data else damaged + b"\x00"


class FaultInjector:
    """The seeded switchboard installed via
    :func:`repro.core.resilience.set_fault_hook`.

    Implements the hook protocol — ``trip(site)`` for raise/delay specs
    and ``corrupt(site, value)`` for corruption specs — plus bookkeeping:
    ``visits`` counts every pass through each site, ``injected`` records
    each firing as ``(site, sequence, mode)`` in firing order.
    Thread-safe; one injector may serve a parallel top-k fan-out.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        self.visits: Dict[str, int] = {}
        self.injected: List[Tuple[str, int, str]] = []
        self._fired: Dict[int, int] = {}  # spec index -> firings so far

    # ------------------------------------------------------------------
    def faults_at(self, site: str) -> int:
        """Number of faults fired at one site so far."""
        with self._lock:
            return sum(1 for s, __, ___ in self.injected if s == site)

    def _should_fire(
        self, index: int, spec: FaultSpec, sequence: int
    ) -> bool:
        """Decide one visit under the lock: skip window + rate draw +
        max_faults cap."""
        if sequence <= spec.skip:
            return False
        fired = self._fired.get(index, 0)
        if spec.max_faults is not None and fired >= spec.max_faults:
            return False
        if spec.rate < 1.0 and self._random.random() >= spec.rate:
            return False
        self._fired[index] = fired + 1
        return True

    def _arm(self, site: str, wanted_modes: Tuple[str, ...]):
        """The first matching spec that fires on this visit, or None."""
        with self._lock:
            self.visits[site] = self.visits.get(site, 0) + 1
            sequence = self.visits[site]
            for index, spec in enumerate(self.specs):
                if spec.site != site or spec.mode not in wanted_modes:
                    continue
                if self._should_fire(index, spec, sequence):
                    self.injected.append((site, sequence, spec.mode))
                    instrument.count(instrument.FAULT_INJECTED)
                    trace.event(
                        instrument.FAULT_INJECTED,
                        f"site={site} mode={spec.mode} visit={sequence}",
                    )
                    return spec, sequence
        return None

    # -- hook protocol ---------------------------------------------------
    def trip(self, site: str) -> None:
        """Raise or delay at a site, per the armed spec (hook protocol)."""
        armed = self._arm(site, (RAISE, DELAY))
        if armed is None:
            return
        spec, sequence = armed
        if spec.mode == DELAY:
            time.sleep(spec.delay_ms / 1000.0)
            return
        message = spec.message or f"injected fault at {site!r}"
        raise InjectedFaultError(message, site=site, sequence=sequence)

    def corrupt(self, site: str, value: Any) -> Any:
        """Corrupt a value flowing through a site (hook protocol).

        Similarity lists become invariant-violating lists; ``bytes``
        (the store's read path) suffer a deterministic bit flip or
        truncation.  Other value types pass through untouched.
        """
        if not isinstance(value, (SimilarityList, bytes, bytearray)):
            return value
        armed = self._arm(site, (CORRUPT,))
        if armed is None:
            return value
        with self._lock:
            if isinstance(value, SimilarityList):
                return corrupt_similarity_list(value, self._random)
            return corrupt_bytes(bytes(value), self._random)

    def shorten(self, site: str, data: bytes) -> Optional[bytes]:
        """A strict prefix of ``data`` when a short-write spec fires
        (hook protocol; None means write normally).

        The prefix length is drawn deterministically in ``[0, len)``,
        so sweeps over seeds exercise everything from a zero-byte torn
        record to one missing only its final byte.
        """
        if not data:
            return None
        armed = self._arm(site, (SHORT_WRITE,))
        if armed is None:
            return None
        with self._lock:
            return bytes(data[: self._random.randrange(len(data))])


@contextmanager
def inject(
    *specs: FaultSpec, seed: int = 0
) -> Iterator[FaultInjector]:
    """Install a seeded injector for the duration of the block.

    Restores the previously installed hook on exit, so injections nest
    and never leak across tests.
    """
    injector = FaultInjector(specs, seed=seed)
    previous = resilience.set_fault_hook(injector)
    try:
        yield injector
    finally:
        resilience.set_fault_hook(previous)
