"""Test-support machinery shipped with the package.

The deterministic fault-injection harness lives here
(:mod:`repro.testing.faults`); the production-side hook points it drives
live in :mod:`repro.core.resilience` so that core never imports testing
code.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    corrupt_similarity_list,
    inject,
)

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "inject",
    "corrupt_similarity_list",
]
