"""Free/bound variable analysis for HTL formulas (paper §2.2).

A variable is *bound* when every occurrence lies in the scope of an
existential quantifier (object variables) or freeze quantifier (attribute
variables) over it; it is *free* otherwise.  An *evaluation* assigns values
to the free variables.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.htl.ast import (
    AttrFunc,
    AttrVar,
    Compare,
    Const,
    Exists,
    Formula,
    Freeze,
    ObjectVar,
    Present,
    Rel,
    Term,
)


def term_object_vars(term: Term) -> Set[str]:
    """Names of object variables occurring in a term."""
    if isinstance(term, ObjectVar):
        return {term.name}
    if isinstance(term, AttrFunc):
        names: Set[str] = set()
        for arg in term.args:
            names |= term_object_vars(arg)
        return names
    return set()


def term_attr_vars(term: Term) -> Set[str]:
    """Names of attribute variables occurring in a term."""
    if isinstance(term, AttrVar):
        return {term.name}
    if isinstance(term, AttrFunc):
        names: Set[str] = set()
        for arg in term.args:
            names |= term_attr_vars(arg)
        return names
    return set()


def free_object_vars(formula: Formula) -> FrozenSet[str]:
    """Object variables free in ``formula``."""
    if isinstance(formula, Present):
        return frozenset({formula.var.name})
    if isinstance(formula, Compare):
        return frozenset(
            term_object_vars(formula.left) | term_object_vars(formula.right)
        )
    if isinstance(formula, Rel):
        names: Set[str] = set()
        for arg in formula.args:
            names |= term_object_vars(arg)
        return frozenset(names)
    if isinstance(formula, Exists):
        return free_object_vars(formula.sub) - frozenset(formula.vars)
    if isinstance(formula, Freeze):
        inner = free_object_vars(formula.sub)
        return frozenset(inner | term_object_vars(formula.func))
    result: Set[str] = set()
    for child in formula.children():
        result |= free_object_vars(child)
    return frozenset(result)


def free_attr_vars(formula: Formula) -> FrozenSet[str]:
    """Attribute variables free in ``formula``."""
    if isinstance(formula, Compare):
        return frozenset(
            term_attr_vars(formula.left) | term_attr_vars(formula.right)
        )
    if isinstance(formula, Rel):
        names: Set[str] = set()
        for arg in formula.args:
            names |= term_attr_vars(arg)
        return frozenset(names)
    if isinstance(formula, Freeze):
        inner = free_attr_vars(formula.sub) - {formula.var}
        return frozenset(inner | term_attr_vars(formula.func))
    result: Set[str] = set()
    for child in formula.children():
        result |= free_attr_vars(child)
    return frozenset(result)


def is_closed(formula: Formula) -> bool:
    """True when the formula has no free variables of either kind."""
    return not free_object_vars(formula) and not free_attr_vars(formula)


def is_constant_term(term: Term) -> bool:
    """True when the term is a constant (no variables, no attribute access)."""
    return isinstance(term, Const)
