"""Abstract syntax of HTL — Hierarchical Temporal Logic (paper §2.2).

Terms
-----
* :class:`ObjectVar` — object variables, ranging over object ids;
* :class:`AttrVar` — attribute variables, bound by the freeze operator;
* :class:`Const` — string / integer / float constants;
* :class:`AttrFunc` — attribute access: ``height(x)`` on an object, or a
  0-argument segment attribute such as ``type`` ("the video is a western").

Formulas
--------
Atomic: :class:`Present`, :class:`Compare`, :class:`Rel` (k-ary predicate
symbols over the meta-data), :class:`AtomicRef` (a named atomic predicate
whose similarity table is produced externally, the form the paper's
experiments feed in), :class:`Truth`, and :class:`Weighted` (per-condition
weight annotation used by the picture-retrieval scoring).

Connectives and operators: ``∧``/``∨``/``¬``; temporal ``next``, ``until``,
``eventually`` (plus ``always`` as the documented extension); the freeze
quantifier ``[y ← q]``; first-order ``∃``; and the level modal operators
``at-next-level``, ``at-level-i`` and the named-level forms.

All nodes are frozen dataclasses, so formulas are hashable values with
structural equality — convenient both for memoising sub-results and for the
round-trip property tests on the parser.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Tuple, Union

from repro.errors import HTLTypeError

# ---------------------------------------------------------------------------
# terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of HTL terms (expressions)."""

    __slots__ = ()


@dataclass(frozen=True)
class ObjectVar(Term):
    """An object variable, ranging over object ids."""

    name: str


@dataclass(frozen=True)
class AttrVar(Term):
    """An attribute variable, bound by the freeze operator ``[y ← q]``."""

    name: str


@dataclass(frozen=True)
class Const(Term):
    """A literal constant: string, int or float."""

    value: Union[str, int, float]


@dataclass(frozen=True)
class AttrFunc(Term):
    """Attribute access ``q(args)``.

    ``AttrFunc('height', (ObjectVar('x'),))`` is the height of object ``x``
    in the current segment; ``AttrFunc('type', ())`` is the segment-level
    attribute ``type``.
    """

    name: str
    args: Tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, Term):
                raise HTLTypeError(
                    f"attribute-function argument must be a Term, got {arg!r}"
                )


COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


# ---------------------------------------------------------------------------
# formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of HTL formulas."""

    __slots__ = ()

    def children(self) -> Iterator["Formula"]:
        """Immediate subformulas (none for atomic formulas)."""
        return iter(())

    def walk(self) -> Iterator["Formula"]:
        """This formula and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# -- atomic -----------------------------------------------------------------


@dataclass(frozen=True)
class Truth(Formula):
    """The formula ``true`` (always exactly satisfied)."""


@dataclass(frozen=True)
class Present(Formula):
    """``present(x)``: object ``x`` appears in the video segment."""

    var: ObjectVar

    def __post_init__(self) -> None:
        if not isinstance(self.var, ObjectVar):
            raise HTLTypeError(
                f"present() takes an object variable, got {self.var!r}"
            )


@dataclass(frozen=True)
class Compare(Formula):
    """A comparison predicate ``left OP right`` over terms."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise HTLTypeError(f"unknown comparison operator {self.op!r}")
        if not isinstance(self.left, Term) or not isinstance(self.right, Term):
            raise HTLTypeError("comparison operands must be Terms")


@dataclass(frozen=True)
class Rel(Formula):
    """A k-ary relationship predicate, e.g. ``fires_at(x, y)``."""

    name: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.args:
            raise HTLTypeError(
                f"relationship {self.name!r} needs at least one argument; "
                "use a segment attribute comparison for 0-ary properties"
            )
        for arg in self.args:
            if not isinstance(arg, Term):
                raise HTLTypeError(
                    f"relationship argument must be a Term, got {arg!r}"
                )


@dataclass(frozen=True)
class AtomicRef(Formula):
    """Reference to an externally supplied atomic predicate.

    The paper's experiments pose atomic predicates ("Moving-Train",
    "Man-Woman") to the picture-retrieval system and feed the resulting
    similarity tables into the video-retrieval system; an :class:`AtomicRef`
    is the hook for exactly that flow.
    """

    name: str


@dataclass(frozen=True)
class LooksLike(Formula):
    """Content-signature predicate ``looks_like('clip', θ)`` (DESIGN.md §16).

    The segment *looks like* a query clip: its content signature (the
    shot-averaged colour histogram attached by the analyzer) matches one
    of the clip's signature windows with similarity ≥ ``theta``.  The
    score is the best per-window similarity when it clears the threshold
    and 0 otherwise, so the atom drops into the similarity-list algebra
    like any other closed atomic formula.

    ``clip`` holds the query's signature windows inline — resolved
    formulas are self-contained values, hashable and structurally
    memoizable like every other node.  The surface syntax references a
    clip by name only; parsing yields an *unresolved* atom (empty
    ``clip``) that :func:`repro.pictures.signature.resolve_clips` must
    rewrite before evaluation.
    """

    theta: float
    clip: Tuple[Tuple[float, ...], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.theta, (int, float)) or isinstance(
            self.theta, bool
        ):
            raise HTLTypeError(
                f"looks_like threshold must be a number, got {self.theta!r}"
            )
        if not 0.0 <= self.theta <= 1.0:
            raise HTLTypeError(
                f"looks_like threshold must be in [0, 1], got {self.theta}"
            )
        if not self.clip and not self.name:
            raise HTLTypeError(
                "looks_like needs a clip: signature windows or a clip name"
            )
        for window in self.clip:
            if not isinstance(window, tuple) or not window:
                raise HTLTypeError(
                    f"clip windows must be non-empty tuples, got {window!r}"
                )

    @property
    def resolved(self) -> bool:
        """Does the atom carry its clip windows inline?"""
        return bool(self.clip)


@dataclass(frozen=True)
class Weighted(Formula):
    """Weight annotation on a non-temporal condition (picture scoring)."""

    weight: float
    sub: Formula

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise HTLTypeError(f"weight must be positive, got {self.weight}")

    def children(self) -> Iterator[Formula]:
        yield self.sub


# -- propositional ------------------------------------------------------------


@dataclass(frozen=True)
class And(Formula):
    """Conjunction ``left ∧ right``."""

    left: Formula
    right: Formula

    def children(self) -> Iterator[Formula]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction ``left ∨ right`` (supported inside atomic subformulas)."""

    left: Formula
    right: Formula

    def children(self) -> Iterator[Formula]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``¬ sub`` (supported inside atomic subformulas)."""

    sub: Formula

    def children(self) -> Iterator[Formula]:
        yield self.sub


# -- temporal -----------------------------------------------------------------


@dataclass(frozen=True)
class Next(Formula):
    """``next sub``: sub holds at the immediately following segment."""

    sub: Formula

    def children(self) -> Iterator[Formula]:
        yield self.sub


@dataclass(frozen=True)
class Until(Formula):
    """``left until right`` with the classical (reflexive) semantics."""

    left: Formula
    right: Formula

    def children(self) -> Iterator[Formula]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class Eventually(Formula):
    """``eventually sub`` ≡ ``true until sub``."""

    sub: Formula

    def children(self) -> Iterator[Formula]:
        yield self.sub


@dataclass(frozen=True)
class Always(Formula):
    """``always sub`` — extension beyond the paper (DESIGN.md §2)."""

    sub: Formula

    def children(self) -> Iterator[Formula]:
        yield self.sub


# -- binders ------------------------------------------------------------------


@dataclass(frozen=True)
class Exists(Formula):
    """``∃ vars . sub`` over object variables."""

    vars: Tuple[str, ...]
    sub: Formula

    def __post_init__(self) -> None:
        if not self.vars:
            raise HTLTypeError("exists needs at least one variable")
        if len(set(self.vars)) != len(self.vars):
            raise HTLTypeError(f"duplicate variables in exists: {self.vars}")

    def children(self) -> Iterator[Formula]:
        yield self.sub


@dataclass(frozen=True)
class Freeze(Formula):
    """The assignment (freeze) operator ``[var ← func] sub``.

    Captures the value of attribute function ``func`` at the current segment
    into attribute variable ``var`` for use in later segments.
    """

    var: str
    func: AttrFunc
    sub: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.func, AttrFunc):
            raise HTLTypeError(
                f"freeze captures an attribute function, got {self.func!r}"
            )

    def children(self) -> Iterator[Formula]:
        yield self.sub


# -- level modal --------------------------------------------------------------


@dataclass(frozen=True)
class AtNextLevel(Formula):
    """``at-next-level(sub)``: sub holds at the first child segment."""

    sub: Formula

    def children(self) -> Iterator[Formula]:
        yield self.sub


@dataclass(frozen=True)
class AtLevel(Formula):
    """``at-level-i(sub)``: sub holds at the first level-``i`` descendant."""

    level: int
    sub: Formula

    def __post_init__(self) -> None:
        if self.level < 1:
            raise HTLTypeError(f"levels are 1-based, got {self.level}")

    def children(self) -> Iterator[Formula]:
        yield self.sub


@dataclass(frozen=True)
class AtNamedLevel(Formula):
    """``at-scene-level`` / ``at-shot-level`` / ``at-frame-level`` etc.

    The name is resolved against the video hierarchy's level names at
    evaluation time.
    """

    level_name: str
    sub: Formula

    def children(self) -> Iterator[Formula]:
        yield self.sub


LEVEL_OPERATORS = (AtNextLevel, AtLevel, AtNamedLevel)
TEMPORAL_OPERATORS = (Next, Until, Eventually, Always)


# ---------------------------------------------------------------------------
# structural cache keys
# ---------------------------------------------------------------------------
def _key_parts(value: object, out: List[str]) -> None:
    if isinstance(value, (Term, Formula)):
        out.append(type(value).__name__)
        out.append("(")
        for spec in dataclasses.fields(value):
            _key_parts(getattr(value, spec.name), out)
            out.append(",")
        out.append(")")
    elif isinstance(value, tuple):
        out.append("[")
        for item in value:
            _key_parts(item, out)
            out.append(",")
        out.append("]")
    else:
        out.append(repr(value))


@lru_cache(maxsize=8192)
def structural_key(node: Union[Formula, Term]) -> str:
    """A stable structural cache key for a formula or term.

    Two nodes have equal keys iff they are structurally equal, and the key
    is a deterministic string (unlike ``hash``, which is salted per process
    for the string fields), so it can serve as a memoization key that
    survives serialization.  Keys are memoized per structurally-distinct
    node, making repeated keying of the same subformula O(1).
    """
    parts: List[str] = []
    _key_parts(node, parts)
    return "".join(parts)


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------
def conj(*formulas: Formula) -> Formula:
    """Left-associated conjunction of one or more formulas."""
    if not formulas:
        raise HTLTypeError("conj needs at least one formula")
    result = formulas[0]
    for formula in formulas[1:]:
        result = And(result, formula)
    return result


def obj(name: str) -> ObjectVar:
    """Shorthand object-variable constructor."""
    return ObjectVar(name)


def attr(name: str, *args: Term) -> AttrFunc:
    """Shorthand attribute-function constructor."""
    return AttrFunc(name, tuple(args))


def const(value: Union[str, int, float]) -> Const:
    """Shorthand constant constructor."""
    return Const(value)


def eq(left: Term, right: Term) -> Compare:
    """Shorthand equality comparison."""
    return Compare("=", left, right)
