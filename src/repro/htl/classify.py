"""Formula classification: type (1) ⊂ type (2) ⊂ conjunctive ⊂ extended
conjunctive ⊂ general HTL (paper §2.5 and §3).

Two views are provided:

* :func:`paper_class` — the literal definitions of the paper: conjunctive
  formulas have *no* negation (and HTL has no primitive disjunction), all
  variables bound, and every existential quantifier either appears at the
  beginning of the formula (or, for extended conjunctive formulas, at the
  beginning of a level-operator body — the reading under which the paper's
  own western-movie example is extended conjunctive; see DESIGN.md) or has
  no temporal operator in its scope.

* :func:`skeleton_class` — the classification the retrieval systems
  actually dispatch on (§4: both systems take "the similarity tables
  associated with the atomic subformulas" as input, where atomic
  subformulas are the *maximal subformulas without temporal operators*).
  Under this view the contents of an atomic subformula are opaque, so
  negation/disjunction *inside* atoms is permitted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import HTLTypeError
from repro.htl.ast import (
    Always,
    And,
    AtLevel,
    AtNamedLevel,
    AtNextLevel,
    AtomicRef,
    Compare,
    Eventually,
    Exists,
    Formula,
    Freeze,
    LEVEL_OPERATORS,
    Next,
    Not,
    Or,
    Present,
    Rel,
    TEMPORAL_OPERATORS,
    Truth,
    Until,
    Weighted,
)
from repro.htl.variables import is_closed


class FormulaClass(enum.IntEnum):
    """The paper's formula classes, ordered by inclusion."""

    TYPE1 = 1
    TYPE2 = 2
    CONJUNCTIVE = 3
    EXTENDED_CONJUNCTIVE = 4
    GENERAL = 5

    def includes(self, other: "FormulaClass") -> bool:
        """Class containment: every TYPE1 formula is also TYPE2, etc."""
        return other <= self


def has_temporal_operator(formula: Formula) -> bool:
    """True when the formula contains next/until/eventually/always."""
    return any(isinstance(node, TEMPORAL_OPERATORS) for node in formula.walk())


def has_level_operator(formula: Formula) -> bool:
    """True when the formula contains a level modal operator."""
    return any(isinstance(node, LEVEL_OPERATORS) for node in formula.walk())


def is_non_temporal(formula: Formula) -> bool:
    """Paper §2.2: no temporal operators *and* no level modal operators."""
    return not has_temporal_operator(formula) and not has_level_operator(formula)


def atomic_subformulas(formula: Formula) -> List[Formula]:
    """The maximal non-temporal subformulas, left to right (paper §4).

    These are the units handed to the picture-retrieval system.  A formula
    that is itself non-temporal is its own single atomic subformula.
    """
    atoms: List[Formula] = []
    _collect_atoms(formula, atoms)
    return atoms


def _collect_atoms(formula: Formula, atoms: List[Formula]) -> None:
    if is_non_temporal(formula):
        atoms.append(formula)
        return
    for child in formula.children():
        _collect_atoms(child, atoms)


@dataclass
class _ScanState:
    """Features gathered while scanning a formula's temporal skeleton."""

    atoms_opaque: bool
    has_freeze: bool = False
    has_level: bool = False
    has_temporal_scoped_exists: bool = False
    general: bool = False
    reasons: List[str] = field(default_factory=list)

    def reject(self, reason: str) -> None:
        self.general = True
        self.reasons.append(reason)


def _strip_prefix_exists(formula: Formula) -> Tuple[Tuple[str, ...], Formula]:
    """Split ``∃x1...∃xk g`` into the prefix variables and the matrix."""
    names: List[str] = []
    body = formula
    while isinstance(body, Exists):
        names.extend(body.vars)
        body = body.sub
    return tuple(names), body


def _atom_ok(formula: Formula, state: _ScanState) -> bool:
    """Is a non-temporal subformula an acceptable atom for this view?"""
    if state.atoms_opaque:
        return True
    # The paper's literal conjunctive definition: no negation anywhere and
    # no disjunction (HTL has no primitive ∨).
    return not any(isinstance(node, (Not, Or)) for node in formula.walk())


def _scan(formula: Formula, state: _ScanState, prefix_ok: bool) -> None:
    """Walk the temporal skeleton, recording features.

    ``prefix_ok`` is True while we are still at the head of the current
    (sub)formula where existential quantifiers count as "at the beginning".
    """
    if state.general:
        return
    if is_non_temporal(formula):
        if not _atom_ok(formula, state):
            state.reject("negation/disjunction outside atomic subformulas")
        return
    if isinstance(formula, And):
        _scan(formula.left, state, prefix_ok=False)
        _scan(formula.right, state, prefix_ok=False)
    elif isinstance(formula, Until):
        _scan(formula.left, state, prefix_ok=False)
        _scan(formula.right, state, prefix_ok=False)
    elif isinstance(formula, (Next, Eventually)):
        _scan(formula.sub, state, prefix_ok=False)
    elif isinstance(formula, Always):
        if not state.atoms_opaque:
            state.reject("'always' is an extension outside the paper's HTL")
        _scan(formula.sub, state, prefix_ok=False)
    elif isinstance(formula, Freeze):
        state.has_freeze = True
        _scan(formula.sub, state, prefix_ok=False)
    elif isinstance(formula, Exists):
        # Reaching an Exists here means its scope contains temporal or
        # level operators (otherwise the whole node would be non-temporal).
        if prefix_ok:
            state.has_temporal_scoped_exists = True
            _scan(formula.sub, state, prefix_ok=True)
        else:
            state.reject(
                "existential quantifier with temporal scope not at the "
                "beginning of the formula"
            )
    elif isinstance(formula, (AtNextLevel, AtLevel, AtNamedLevel)):
        state.has_level = True
        __, body = _strip_prefix_exists(formula.sub)
        if body is not formula.sub:
            state.has_temporal_scoped_exists = True
        _scan(body, state, prefix_ok=True)
    elif isinstance(formula, Weighted):
        state.reject("weight annotation wrapping a temporal subformula")
    elif isinstance(formula, (Not, Or)):
        state.reject("negation/disjunction over a temporal subformula")
    else:  # pragma: no cover - future node kinds
        state.reject(f"unsupported node {type(formula).__name__}")


def _classify(formula: Formula, atoms_opaque: bool) -> FormulaClass:
    if not is_closed(formula):
        return FormulaClass.GENERAL
    state = _ScanState(atoms_opaque=atoms_opaque)
    prefix_vars, body = _strip_prefix_exists(formula)
    if prefix_vars and not is_non_temporal(body):
        state.has_temporal_scoped_exists = True
    _scan(body, state, prefix_ok=True)
    if state.general:
        return FormulaClass.GENERAL
    if state.has_level:
        return FormulaClass.EXTENDED_CONJUNCTIVE
    if state.has_freeze:
        return FormulaClass.CONJUNCTIVE
    if state.has_temporal_scoped_exists:
        return FormulaClass.TYPE2
    return FormulaClass.TYPE1


def paper_class(formula: Formula) -> FormulaClass:
    """Smallest paper class containing the formula (literal definitions)."""
    return _classify(formula, atoms_opaque=False)


def skeleton_class(formula: Formula) -> FormulaClass:
    """Smallest class of the formula's temporal skeleton (atoms opaque)."""
    return _classify(formula, atoms_opaque=True)


def require_class(
    formula: Formula,
    at_most: FormulaClass,
    view: str = "skeleton",
) -> FormulaClass:
    """Raise :class:`HTLTypeError` unless the formula's class ≤ ``at_most``."""
    actual = (
        skeleton_class(formula) if view == "skeleton" else paper_class(formula)
    )
    if actual > at_most:
        raise HTLTypeError(
            f"formula is {actual.name}, but this algorithm supports at most "
            f"{at_most.name}"
        )
    return actual
