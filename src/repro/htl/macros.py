"""Named predicate definitions (query macros).

The paper's experiments pose atomic predicates such as ``Moving-Train`` to
the picture system by name.  A :class:`PredicateRegistry` lets users *
define* those names as non-temporal HTL formulas once and reference them
with ``atomic('Name')`` afterwards; expansion happens before evaluation,
so a registered definition behaves exactly like writing the formula
inline — and a similarity list registered in the video database still
takes precedence (the definition is the fallback for videos without
precomputed tables).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import HTLTypeError
from repro.htl import ast
from repro.htl.classify import is_non_temporal
from repro.htl.parser import parse
from repro.htl.variables import free_attr_vars, free_object_vars


class PredicateRegistry:
    """Named non-temporal formulas usable as ``atomic('Name')``."""

    def __init__(self) -> None:
        self._definitions: Dict[str, ast.Formula] = {}

    def define(self, name: str, formula: "ast.Formula | str") -> ast.Formula:
        """Register a definition; text is parsed first.

        Definitions must be closed non-temporal formulas (they stand for
        atomic predicates, which are evaluated per segment) and must not
        reference themselves or other atomic names (no recursion).
        """
        if isinstance(formula, str):
            formula = parse(formula)
        if not is_non_temporal(formula):
            raise HTLTypeError(
                f"predicate {name!r} must be non-temporal (it stands for "
                "an atomic subformula evaluated on single segments)"
            )
        if free_object_vars(formula) or free_attr_vars(formula):
            raise HTLTypeError(
                f"predicate {name!r} must be a closed formula"
            )
        for node in formula.walk():
            if isinstance(node, ast.AtomicRef):
                raise HTLTypeError(
                    f"predicate {name!r} may not reference other atomic "
                    f"predicates ({node.name!r}); inline the definition"
                )
        if name in self._definitions:
            raise HTLTypeError(f"predicate {name!r} is already defined")
        self._definitions[name] = formula
        return formula

    def lookup(self, name: str) -> Optional[ast.Formula]:
        return self._definitions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def names(self) -> Iterator[str]:
        return iter(sorted(self._definitions))

    # ------------------------------------------------------------------
    def expand(self, formula: ast.Formula) -> ast.Formula:
        """Replace every defined ``AtomicRef`` by its definition.

        Unknown names are left untouched (they may be resolved later by a
        registered similarity list).
        """
        return _rewrite(formula, self._definitions)


def _rewrite(
    formula: ast.Formula, definitions: Dict[str, ast.Formula]
) -> ast.Formula:
    if isinstance(formula, ast.AtomicRef):
        return definitions.get(formula.name, formula)
    if isinstance(formula, ast.And):
        return ast.And(
            _rewrite(formula.left, definitions),
            _rewrite(formula.right, definitions),
        )
    if isinstance(formula, ast.Or):
        return ast.Or(
            _rewrite(formula.left, definitions),
            _rewrite(formula.right, definitions),
        )
    if isinstance(formula, ast.Until):
        return ast.Until(
            _rewrite(formula.left, definitions),
            _rewrite(formula.right, definitions),
        )
    if isinstance(formula, ast.Not):
        return ast.Not(_rewrite(formula.sub, definitions))
    if isinstance(formula, ast.Next):
        return ast.Next(_rewrite(formula.sub, definitions))
    if isinstance(formula, ast.Eventually):
        return ast.Eventually(_rewrite(formula.sub, definitions))
    if isinstance(formula, ast.Always):
        return ast.Always(_rewrite(formula.sub, definitions))
    if isinstance(formula, ast.Exists):
        return ast.Exists(formula.vars, _rewrite(formula.sub, definitions))
    if isinstance(formula, ast.Freeze):
        return ast.Freeze(
            formula.var, formula.func, _rewrite(formula.sub, definitions)
        )
    if isinstance(formula, ast.Weighted):
        return ast.Weighted(
            formula.weight, _rewrite(formula.sub, definitions)
        )
    if isinstance(formula, ast.AtNextLevel):
        return ast.AtNextLevel(_rewrite(formula.sub, definitions))
    if isinstance(formula, ast.AtLevel):
        return ast.AtLevel(formula.level, _rewrite(formula.sub, definitions))
    if isinstance(formula, ast.AtNamedLevel):
        return ast.AtNamedLevel(
            formula.level_name, _rewrite(formula.sub, definitions)
        )
    return formula
