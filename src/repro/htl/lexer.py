"""Tokenizer for the HTL concrete syntax.

The surface language is ASCII: keywords (``and``, ``until``,
``eventually``, ``exists`` ...), identifiers, single-quoted strings,
numbers, comparison operators and punctuation.  Line comments start with
``--`` (the SQL habit) or ``#`` and run to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.errors import HTLSyntaxError

KEYWORDS = frozenset(
    {
        "and",
        "or",
        "not",
        "next",
        "until",
        "eventually",
        "always",
        "exists",
        "present",
        "true",
        "weight",
        "atomic",
        "looks_like",
        "at_next_level",
        "at_level",
    }
)

_TWO_CHAR_SYMBOLS = (":=", "!=", "<=", ">=")
_ONE_CHAR_SYMBOLS = "()[],.$@=<>"


@dataclass(frozen=True)
class Token:
    """A lexical token with source position (1-based line/column)."""

    kind: str  # 'ident', 'keyword', 'number', 'string', 'symbol', 'eof'
    value: Union[str, int, float]
    line: int
    column: int

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "symbol" and self.value == symbol

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word


def tokenize(text: str) -> List[Token]:
    """Tokenize HTL query text; raises :class:`HTLSyntaxError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    position = 0
    line = 1
    line_start = 0
    length = len(text)
    while position < length:
        char = text[position]
        column = position - line_start + 1
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char.isspace():
            position += 1
            continue
        if char == "#" or text.startswith("--", position):
            while position < length and text[position] != "\n":
                position += 1
            continue
        if char == "'":
            value, position = _scan_string(text, position, line, column)
            yield Token("string", value, line, column)
            continue
        if char.isdigit() or (
            char == "-" and position + 1 < length and text[position + 1].isdigit()
        ):
            value, position = _scan_number(text, position)
            yield Token("number", value, line, column)
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            kind = "keyword" if word in KEYWORDS else "ident"
            yield Token(kind, word, line, column)
            position = end
            continue
        two = text[position : position + 2]
        if two in _TWO_CHAR_SYMBOLS:
            yield Token("symbol", two, line, column)
            position += 2
            continue
        if char in _ONE_CHAR_SYMBOLS:
            yield Token("symbol", char, line, column)
            position += 1
            continue
        raise HTLSyntaxError(f"unexpected character {char!r}", line, column)
    yield Token("eof", "", line, length - line_start + 1)


def _scan_string(
    text: str, position: int, line: int, column: int
) -> "tuple[str, int]":
    end = position + 1
    chunks: List[str] = []
    while end < len(text):
        char = text[end]
        if char == "'":
            # '' escapes a quote, SQL style.
            if end + 1 < len(text) and text[end + 1] == "'":
                chunks.append("'")
                end += 2
                continue
            return "".join(chunks), end + 1
        if char == "\n":
            break
        chunks.append(char)
        end += 1
    raise HTLSyntaxError("unterminated string literal", line, column)


def _scan_number(text: str, position: int) -> "tuple[Union[int, float], int]":
    end = position
    if text[end] == "-":
        end += 1
    while end < len(text) and text[end].isdigit():
        end += 1
    is_float = False
    if end < len(text) and text[end] == "." and end + 1 < len(text) and text[
        end + 1
    ].isdigit():
        is_float = True
        end += 1
        while end < len(text) and text[end].isdigit():
            end += 1
    literal = text[position:end]
    return (float(literal) if is_float else int(literal)), end
