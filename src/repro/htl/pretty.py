"""Pretty-printer (unparser) for HTL formulas.

:func:`pretty` emits concrete syntax that :func:`repro.htl.parser.parse`
maps back to the *same* AST (the round-trip property is tested with
hypothesis).  Parenthesisation is conservative: binder forms (``exists``,
freeze) whose scope extends maximally to the right are always wrapped when
they appear below the root of a larger formula.

Limitations (documented, asserted where cheap): identifiers that collide
with HTL keywords, attribute functions named like keywords, and an object
variable shadowed by an in-scope freeze-bound attribute variable of the
same name cannot be round-tripped.
"""

from __future__ import annotations

from typing import Set, Union

from repro.errors import HTLTypeError
from repro.htl import ast
from repro.htl.lexer import KEYWORDS

_PREC_BINDER = 0
_PREC_OR = 1
_PREC_AND = 2
_PREC_UNTIL = 3
_PREC_UNARY = 4
_PREC_ATOM = 5


def pretty(formula: ast.Formula) -> str:
    """Render a formula to parseable concrete syntax."""
    return _Printer().formula(formula, _PREC_BINDER)


def pretty_term(term: ast.Term) -> str:
    """Render a term to parseable concrete syntax."""
    return _Printer().term(term)


def _format_number(value: Union[int, float]) -> str:
    text = repr(value)
    if "e" in text or "E" in text or "inf" in text or "nan" in text:
        raise HTLTypeError(
            f"number {value!r} has no HTL literal form (no exponents/specials)"
        )
    return text


def _format_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def _check_ident(name: str) -> str:
    if not name or name in KEYWORDS or not name.replace("_", "a").isalnum():
        raise HTLTypeError(f"{name!r} is not a printable HTL identifier")
    if name[0].isdigit():
        raise HTLTypeError(f"identifier {name!r} may not start with a digit")
    return name


class _Printer:
    def __init__(self) -> None:
        self._bound_attr_vars: Set[str] = set()

    # -- terms ----------------------------------------------------------
    def term(self, term: ast.Term) -> str:
        if isinstance(term, ast.Const):
            if isinstance(term.value, str):
                return _format_string(term.value)
            return _format_number(term.value)
        if isinstance(term, ast.ObjectVar):
            if term.name in self._bound_attr_vars:
                raise HTLTypeError(
                    f"object variable {term.name!r} shadowed by an attribute "
                    "variable in scope; rename to print"
                )
            return _check_ident(term.name)
        if isinstance(term, ast.AttrVar):
            if term.name in self._bound_attr_vars:
                return _check_ident(term.name)
            return "@" + _check_ident(term.name)
        if isinstance(term, ast.AttrFunc):
            args = ", ".join(self.term(arg) for arg in term.args)
            return f"{_check_ident(term.name)}({args})"
        raise HTLTypeError(f"unknown term {term!r}")

    # -- formulas -------------------------------------------------------
    def formula(self, node: ast.Formula, min_prec: int) -> str:
        text, prec = self._render(node)
        if prec < min_prec:
            return f"({text})"
        return text

    def _render(self, node: ast.Formula) -> "tuple[str, int]":
        if isinstance(node, ast.Truth):
            return "true", _PREC_ATOM
        if isinstance(node, ast.Present):
            return f"present({_check_ident(node.var.name)})", _PREC_ATOM
        if isinstance(node, ast.Compare):
            left = self.term(node.left)
            right = self.term(node.right)
            return f"{left} {node.op} {right}", _PREC_ATOM
        if isinstance(node, ast.Rel):
            args = ", ".join(self.term(arg) for arg in node.args)
            return f"{_check_ident(node.name)}({args})", _PREC_ATOM
        if isinstance(node, ast.AtomicRef):
            return f"atomic({_format_string(node.name)})", _PREC_ATOM
        if isinstance(node, ast.LooksLike):
            # Anonymous resolved clips print under a shape-derived
            # placeholder name: the text is parseable (documented
            # limitation: it reparses to an *unresolved* atom), which is
            # what span naming and plan rendering need.
            name = node.name or f"clip_{len(node.clip)}x{len(node.clip[0])}"
            theta_text = repr(node.theta)
            if "e" in theta_text or "E" in theta_text:
                # Tiny thresholds repr with exponents; θ ∈ [0, 1] always
                # has a positional decimal form.
                theta_text = f"{node.theta:.17f}".rstrip("0") or "0"
                if theta_text.endswith("."):
                    theta_text += "0"
            theta = theta_text
            return (
                f"looks_like({_format_string(name)}, {theta})",
                _PREC_ATOM,
            )
        if isinstance(node, ast.Weighted):
            body = self.formula(node.sub, _PREC_BINDER)
            return (
                f"weight({_format_number(node.weight)}, {body})",
                _PREC_ATOM,
            )
        if isinstance(node, ast.And):
            left = self.formula(node.left, _PREC_AND)
            right = self.formula(node.right, _PREC_AND + 1)
            return f"{left} and {right}", _PREC_AND
        if isinstance(node, ast.Or):
            left = self.formula(node.left, _PREC_OR)
            right = self.formula(node.right, _PREC_OR + 1)
            return f"{left} or {right}", _PREC_OR
        if isinstance(node, ast.Until):
            left = self.formula(node.left, _PREC_UNARY)
            right = self.formula(node.right, _PREC_UNTIL)
            return f"{left} until {right}", _PREC_UNTIL
        if isinstance(node, ast.Not):
            return f"not {self.formula(node.sub, _PREC_UNARY)}", _PREC_UNARY
        if isinstance(node, ast.Next):
            return f"next {self.formula(node.sub, _PREC_UNARY)}", _PREC_UNARY
        if isinstance(node, ast.Eventually):
            return (
                f"eventually {self.formula(node.sub, _PREC_UNARY)}",
                _PREC_UNARY,
            )
        if isinstance(node, ast.Always):
            return f"always {self.formula(node.sub, _PREC_UNARY)}", _PREC_UNARY
        if isinstance(node, ast.Exists):
            names = ", ".join(_check_ident(name) for name in node.vars)
            body = self.formula(node.sub, _PREC_BINDER)
            return f"exists {names} . {body}", _PREC_BINDER
        if isinstance(node, ast.Freeze):
            func = self.term(node.func)
            name = _check_ident(node.var)
            newly_bound = node.var not in self._bound_attr_vars
            if newly_bound:
                self._bound_attr_vars.add(node.var)
            try:
                body = self.formula(node.sub, _PREC_BINDER)
            finally:
                if newly_bound:
                    self._bound_attr_vars.discard(node.var)
            return f"[{name} := {func}] {body}", _PREC_BINDER
        if isinstance(node, ast.AtNextLevel):
            body = self.formula(node.sub, _PREC_BINDER)
            return f"at_next_level({body})", _PREC_ATOM
        if isinstance(node, ast.AtLevel):
            body = self.formula(node.sub, _PREC_BINDER)
            return f"at_level({node.level}, {body})", _PREC_ATOM
        if isinstance(node, ast.AtNamedLevel):
            name = _check_ident(node.level_name)
            if name == "next":
                raise HTLTypeError(
                    "named level 'next' collides with at_next_level"
                )
            body = self.formula(node.sub, _PREC_BINDER)
            return f"at_{name}_level({body})", _PREC_ATOM
        raise HTLTypeError(f"unknown formula node {node!r}")
