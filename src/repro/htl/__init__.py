"""HTL — Hierarchical Temporal Logic (paper §2): AST, parser, classes."""

from repro.htl import ast
from repro.htl.classify import (
    FormulaClass,
    atomic_subformulas,
    is_non_temporal,
    paper_class,
    skeleton_class,
)
from repro.htl.parser import parse, parse_term
from repro.htl.pretty import pretty, pretty_term
from repro.htl.variables import free_attr_vars, free_object_vars, is_closed

__all__ = [
    "ast",
    "parse",
    "parse_term",
    "pretty",
    "pretty_term",
    "FormulaClass",
    "paper_class",
    "skeleton_class",
    "atomic_subformulas",
    "is_non_temporal",
    "free_object_vars",
    "free_attr_vars",
    "is_closed",
]
