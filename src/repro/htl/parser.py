"""Recursive-descent parser for the HTL concrete syntax (paper Fig. 1).

Grammar (loosest to tightest binding)::

    formula     := 'exists' IDENT (',' IDENT)* '.' formula
                 | '[' IDENT ':=' attr_func ']' formula
                 | or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := until_expr ('and' until_expr)*
    until_expr  := unary ('until' until_expr)?            -- right associative
    unary       := ('not' | 'next' | 'eventually' | 'always') unary
                 | level_op | prefix-form | primary
    level_op    := 'at_next_level' '(' formula ')'
                 | 'at_level' '(' NUMBER ',' formula ')'
                 | 'at_<name>_level' '(' formula ')'
    primary     := 'true'
                 | 'present' '(' IDENT ')'
                 | 'weight' '(' NUMBER ',' formula ')'
                 | 'atomic' '(' STRING ')' | '$' IDENT
                 | 'looks_like' '(' STRING ',' NUMBER ')'
                 | term (CMP term)?                        -- Compare or Rel
                 | '(' formula ')'
    term        := NUMBER | STRING | '@' IDENT
                 | IDENT [ '(' [term (',' term)*] ')' ]

Identifier resolution: an identifier bound by an enclosing ``exists`` is an
object variable; one bound by a freeze ``[h := ...]`` is an attribute
variable; an *unbound* identifier is an object variable when bare and an
attribute function when applied (``height(x)``) — segment attributes use
explicit empty parentheses (``type() = 'western'``).  ``@name`` forces an
attribute variable; useful only for open formulas.

A bare applied identifier that is *not* followed by a comparison operator
denotes a relationship predicate (``fires_at(x, y)``); followed by one it
is an attribute function (``height(x) > @h``).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import HTLSyntaxError
from repro.htl import ast
from repro.htl.lexer import Token, tokenize

_COMPARISONS = frozenset(ast.COMPARISON_OPS)


def parse(text: str) -> ast.Formula:
    """Parse HTL query text into a formula AST."""
    parser = _Parser(tokenize(text))
    formula = parser.parse_formula()
    parser.expect_eof()
    return formula


def parse_term(text: str) -> ast.Term:
    """Parse a single term (mainly for tests and the CLI)."""
    parser = _Parser(tokenize(text))
    term = parser.parse_term()
    parser.expect_eof()
    return term


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0
        self._object_vars: Set[str] = set()
        self._attr_vars: Set[str] = set()

    # -- token plumbing -----------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str) -> HTLSyntaxError:
        token = self._current
        return HTLSyntaxError(
            f"{message}, found {token.kind} {token.value!r}",
            token.line,
            token.column,
        )

    def _expect_symbol(self, symbol: str) -> None:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        self._advance()

    def _accept_symbol(self, symbol: str) -> bool:
        if self._current.is_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        if self._current.kind != "ident":
            raise self._error("expected an identifier")
        return str(self._advance().value)

    def expect_eof(self) -> None:
        if self._current.kind != "eof":
            raise self._error("unexpected trailing input")

    # -- formulas -----------------------------------------------------------
    def parse_formula(self) -> ast.Formula:
        if self._current.is_keyword("exists"):
            return self._parse_exists()
        if self._current.is_symbol("["):
            return self._parse_freeze()
        return self._parse_or()

    def _parse_exists(self) -> ast.Formula:
        self._advance()  # 'exists'
        names = [self._expect_ident()]
        while self._accept_symbol(","):
            names.append(self._expect_ident())
        self._expect_symbol(".")
        added = [name for name in names if name not in self._object_vars]
        self._object_vars.update(added)
        try:
            body = self.parse_formula()
        finally:
            self._object_vars.difference_update(added)
        return ast.Exists(tuple(names), body)

    def _parse_freeze(self) -> ast.Formula:
        self._expect_symbol("[")
        name = self._expect_ident()
        self._expect_symbol(":=")
        func = self.parse_term()
        if not isinstance(func, ast.AttrFunc):
            raise self._error("freeze must capture an attribute function")
        self._expect_symbol("]")
        newly_bound = name not in self._attr_vars
        if newly_bound:
            self._attr_vars.add(name)
        try:
            body = self.parse_formula()
        finally:
            if newly_bound:
                self._attr_vars.discard(name)
        return ast.Freeze(name, func, body)

    def _parse_or(self) -> ast.Formula:
        formula = self._parse_and()
        while self._current.is_keyword("or"):
            self._advance()
            formula = ast.Or(formula, self._parse_and())
        return formula

    def _parse_and(self) -> ast.Formula:
        formula = self._parse_until()
        while self._current.is_keyword("and"):
            self._advance()
            formula = ast.And(formula, self._parse_until())
        return formula

    def _parse_until(self) -> ast.Formula:
        formula = self._parse_unary()
        if self._current.is_keyword("until"):
            self._advance()
            return ast.Until(formula, self._parse_until())
        return formula

    def _parse_unary(self) -> ast.Formula:
        token = self._current
        if token.is_keyword("not"):
            self._advance()
            return ast.Not(self._parse_unary())
        if token.is_keyword("next"):
            self._advance()
            return ast.Next(self._parse_unary())
        if token.is_keyword("eventually"):
            self._advance()
            return ast.Eventually(self._parse_unary())
        if token.is_keyword("always"):
            self._advance()
            return ast.Always(self._parse_unary())
        if token.is_keyword("exists"):
            return self._parse_exists()
        if token.is_symbol("["):
            return self._parse_freeze()
        if token.is_keyword("at_next_level"):
            self._advance()
            self._expect_symbol("(")
            body = self.parse_formula()
            self._expect_symbol(")")
            return ast.AtNextLevel(body)
        if token.is_keyword("at_level"):
            self._advance()
            self._expect_symbol("(")
            level_token = self._advance()
            if level_token.kind != "number" or not isinstance(
                level_token.value, int
            ):
                raise self._error("at_level expects an integer level")
            self._expect_symbol(",")
            body = self.parse_formula()
            self._expect_symbol(")")
            return ast.AtLevel(level_token.value, body)
        if (
            token.kind == "ident"
            and isinstance(token.value, str)
            and token.value.startswith("at_")
            and token.value.endswith("_level")
            and len(token.value) > len("at__level")
        ):
            level_name = token.value[len("at_") : -len("_level")]
            self._advance()
            self._expect_symbol("(")
            body = self.parse_formula()
            self._expect_symbol(")")
            return ast.AtNamedLevel(level_name, body)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Formula:
        token = self._current
        if token.is_keyword("true"):
            self._advance()
            return ast.Truth()
        if token.is_keyword("present"):
            self._advance()
            self._expect_symbol("(")
            name = self._expect_ident()
            self._expect_symbol(")")
            return ast.Present(ast.ObjectVar(name))
        if token.is_keyword("weight"):
            self._advance()
            self._expect_symbol("(")
            weight_token = self._advance()
            if weight_token.kind != "number":
                raise self._error("weight expects a number")
            self._expect_symbol(",")
            body = self.parse_formula()
            self._expect_symbol(")")
            return ast.Weighted(float(weight_token.value), body)
        if token.is_keyword("atomic"):
            self._advance()
            self._expect_symbol("(")
            name_token = self._advance()
            if name_token.kind != "string":
                raise self._error("atomic expects a quoted predicate name")
            self._expect_symbol(")")
            return ast.AtomicRef(str(name_token.value))
        if token.is_keyword("looks_like"):
            self._advance()
            self._expect_symbol("(")
            clip_token = self._advance()
            if clip_token.kind != "string" or not clip_token.value:
                raise self._error("looks_like expects a quoted clip name")
            self._expect_symbol(",")
            theta_token = self._advance()
            if theta_token.kind != "number":
                raise self._error("looks_like expects a numeric threshold")
            self._expect_symbol(")")
            # Parsed atoms are *unresolved*: the clip's signature windows
            # are bound later (repro.pictures.signature.resolve_clips).
            return ast.LooksLike(
                theta=float(theta_token.value), name=str(clip_token.value)
            )
        if token.is_symbol("$"):
            self._advance()
            return ast.AtomicRef(self._expect_ident())
        if token.is_symbol("("):
            self._advance()
            body = self.parse_formula()
            self._expect_symbol(")")
            return body
        return self._parse_term_formula()

    def _parse_term_formula(self) -> ast.Formula:
        """A comparison, or a relationship predicate."""
        left, applied_name, applied_args = self._parse_term_or_call()
        op_token = self._current
        if op_token.kind == "symbol" and op_token.value in _COMPARISONS:
            self._advance()
            right = self.parse_term()
            return ast.Compare(str(op_token.value), left, right)
        if applied_name is not None:
            return ast.Rel(applied_name, applied_args)
        raise self._error("expected a comparison operator or a predicate")

    # -- terms --------------------------------------------------------------
    def parse_term(self) -> ast.Term:
        term, __, __ = self._parse_term_or_call()
        return term

    def _parse_term_or_call(
        self,
    ) -> Tuple[ast.Term, Optional[str], Tuple[ast.Term, ...]]:
        """Parse a term; report whether it was an applied identifier.

        Returns ``(term, name, args)`` where ``name`` is non-None exactly
        when the term came from ``IDENT '(' ... ')'`` syntax, so the caller
        can reinterpret it as a relationship predicate.
        """
        token = self._current
        if token.kind == "number":
            self._advance()
            return ast.Const(token.value), None, ()
        if token.kind == "string":
            self._advance()
            return ast.Const(str(token.value)), None, ()
        if token.is_symbol("@"):
            self._advance()
            return ast.AttrVar(self._expect_ident()), None, ()
        if token.kind != "ident":
            raise self._error("expected a term")
        name = self._expect_ident()
        if self._accept_symbol("("):
            args: List[ast.Term] = []
            if not self._current.is_symbol(")"):
                args.append(self.parse_term())
                while self._accept_symbol(","):
                    args.append(self.parse_term())
            self._expect_symbol(")")
            func = ast.AttrFunc(name, tuple(args))
            return func, name, tuple(args)
        if name in self._attr_vars:
            return ast.AttrVar(name), None, ()
        return ast.ObjectVar(name), None, ()
