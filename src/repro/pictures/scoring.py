"""Similarity scoring of non-temporal formulas on a single segment.

This is the reproduction's stand-in for the picture-retrieval scoring of
the paper's references [27, 25, 2]: a non-temporal formula is a weighted
set of conditions; the maximum similarity is the total weight (a function
of the formula alone) and the actual similarity is the weight of the
satisfied conditions, each scaled by the confidence of the meta-data facts
it matched.  Confidences below 1 are how fractional similarity values such
as the paper's 9.787 arise.

The same scorer backs both the picture-retrieval table builder and the
naive reference-semantics oracle, so atom-level agreement is by
construction; the list/table algebra is what the oracle then cross-checks.

Semantics of the pieces (``w`` is the condition weight, default 1):

* ``present(x)`` — ``w * confidence(object)`` when the bound object id
  appears in the segment, else 0.
* comparisons — ``w * conf(left) * conf(right)`` when both terms are
  defined and the comparison holds, else 0.  Cross-type ordered
  comparisons are unsatisfied; ``=``/``!=`` compare across types.
* relationships — ``w * confidence(tuple)`` when a relationship with that
  name and exactly those argument values exists in the segment.
* ``g ∧ h`` — sum of the parts; ``g ∨ h`` — best part; ``¬g`` — the
  unsatisfied weight ``m(g) - a(g)``.
* ``∃x g`` — maximum over the object universe.
* ``true`` — ``(1, 1)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Optional, Sequence, Tuple, Union

from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.model.metadata import SegmentMetadata

#: A binding of variable names (object and attribute alike) to values.
Binding = Dict[str, Union[str, int, float]]

#: Sentinel id standing for "any object not appearing in the video".  The
#: paper's evaluations range over a *universal* set of object ids, so ∃
#: must also consider objects absent from every segment (they score zero on
#: presence/attribute/relationship conditions but may still maximise a
#: formula through its variable-free or negated conditions).  One fresh id
#: represents that whole class; see the module docstring for the known
#: approximation (two distinct unknown objects are not distinguishable).
FRESH_OBJECT_ID = "__no_such_object__"


def exists_pool(universe: Sequence[str]) -> "list[str]":
    """The pool an existential quantifier ranges over."""
    pool = [oid for oid in universe if oid != FRESH_OBJECT_ID]
    pool.append(FRESH_OBJECT_ID)
    return pool


def max_similarity(formula: ast.Formula) -> float:
    """The maximum similarity ``m`` of a non-temporal formula.

    Depends only on the formula (paper §2.5: "the maximum m is only a
    function of f").
    """
    if isinstance(
        formula,
        (ast.Truth, ast.Present, ast.Compare, ast.Rel, ast.LooksLike),
    ):
        return 1.0
    if isinstance(formula, ast.Weighted):
        return formula.weight * max_similarity(formula.sub)
    if isinstance(formula, ast.And):
        return max_similarity(formula.left) + max_similarity(formula.right)
    if isinstance(formula, ast.Or):
        return max(max_similarity(formula.left), max_similarity(formula.right))
    if isinstance(formula, ast.Not):
        return max_similarity(formula.sub)
    if isinstance(formula, ast.Exists):
        return max_similarity(formula.sub)
    if isinstance(formula, ast.Freeze):
        # A freeze with no temporal operator in scope binds within the
        # current segment only; it is a non-temporal formula (paper §2.2).
        return max_similarity(formula.sub)
    if isinstance(formula, ast.AtomicRef):
        raise UnsupportedFormulaError(
            f"atomic reference {formula.name!r} has no intrinsic maximum; "
            "its registered similarity list carries one"
        )
    raise UnsupportedFormulaError(
        f"{type(formula).__name__} is not a non-temporal formula"
    )


def eval_term(
    term: ast.Term, segment: SegmentMetadata, binding: Binding
) -> Optional[Tuple[Union[str, int, float], float]]:
    """Evaluate a term to ``(value, confidence)``; None when undefined."""
    if isinstance(term, ast.Const):
        return term.value, 1.0
    if isinstance(term, (ast.ObjectVar, ast.AttrVar)):
        if term.name not in binding:
            return None
        return binding[term.name], 1.0
    if isinstance(term, ast.AttrFunc):
        if not term.args:
            fact = segment.segment_attribute(term.name)
            return None if fact is None else (fact.value, fact.confidence)
        holder = eval_term(term.args[0], segment, binding)
        if holder is None:
            return None
        object_id, holder_confidence = holder
        if not isinstance(object_id, str):
            return None
        fact = segment.object_attribute(object_id, term.name)
        if fact is None:
            return None
        return fact.value, fact.confidence * holder_confidence
    raise UnsupportedFormulaError(f"cannot evaluate term {term!r}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(op: str, left: object, right: object) -> bool:
    """Apply a comparison operator with cross-type care.

    ``=``/``!=`` work across types (unequal types are simply unequal);
    ordered comparisons require both numbers or both strings.
    """
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    comparable = (_is_number(left) and _is_number(right)) or (
        isinstance(left, str) and isinstance(right, str)
    )
    if not comparable:
        return False
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    return left >= right  # '>='


def score(
    formula: ast.Formula,
    segment: SegmentMetadata,
    binding: Binding,
    universe: Sequence[str] = (),
    narrow: bool = False,
) -> float:
    """Actual similarity ``a`` of a non-temporal formula at one segment.

    ``universe`` is the pool of object ids an inner ``∃`` quantifies over;
    pass the video's object universe for definitional fidelity (it defaults
    to the segment's own objects inside :func:`score_with_segment_universe`).

    ``narrow=True`` lets each ``∃`` iterate only the pool members that can
    be distinguished from the fresh-object representative on this segment
    (see :func:`_narrowed_pool`); the result is provably identical and the
    indexed retrieval path enables it by default.  The reference semantics
    keep the definitional full-pool iteration.
    """
    if isinstance(formula, ast.Truth):
        return 1.0
    if isinstance(formula, ast.Present):
        object_id = binding.get(formula.var.name)
        if not isinstance(object_id, str):
            return 0.0
        instance = segment.object(object_id)
        return instance.confidence if instance is not None else 0.0
    if isinstance(formula, ast.Compare):
        left = eval_term(formula.left, segment, binding)
        right = eval_term(formula.right, segment, binding)
        if left is None or right is None:
            return 0.0
        if compare_values(formula.op, left[0], right[0]):
            return left[1] * right[1]
        return 0.0
    if isinstance(formula, ast.Rel):
        values = []
        confidence = 1.0
        for arg in formula.args:
            evaluated = eval_term(arg, segment, binding)
            if evaluated is None:
                return 0.0
            values.append(evaluated[0])
            confidence *= evaluated[1]
        match = segment.find_relationship(formula.name, tuple(values))
        if match is None:
            return 0.0
        return confidence * match.confidence
    if isinstance(formula, ast.Weighted):
        return formula.weight * score(
            formula.sub, segment, binding, universe, narrow
        )
    if isinstance(formula, ast.And):
        return score(formula.left, segment, binding, universe, narrow) + score(
            formula.right, segment, binding, universe, narrow
        )
    if isinstance(formula, ast.Or):
        return max(
            score(formula.left, segment, binding, universe, narrow),
            score(formula.right, segment, binding, universe, narrow),
        )
    if isinstance(formula, ast.Not):
        return max_similarity(formula.sub) - score(
            formula.sub, segment, binding, universe, narrow
        )
    if isinstance(formula, ast.Exists):
        base = list(universe) if universe else list(segment.object_ids())
        return _score_exists(
            formula, segment, binding, exists_pool(base), narrow
        )
    if isinstance(formula, ast.Freeze):
        captured = eval_term(formula.func, segment, binding)
        if captured is None:
            # Capturing an undefined attribute fails the whole freeze
            # (DESIGN.md §2 convention, matching the reference semantics).
            return 0.0
        extended = dict(binding)
        extended[formula.var] = captured[0]
        return score(formula.sub, segment, extended, universe, narrow)
    if isinstance(formula, ast.LooksLike):
        # Imported here: the signature backend is a sibling module that
        # must stay import-light (no scoring dependency the other way).
        from repro.pictures.signature import looks_like_score

        return looks_like_score(formula, segment.signature)
    raise UnsupportedFormulaError(
        f"{type(formula).__name__} is not scorable on a single segment"
    )


def _score_exists(
    formula: ast.Exists,
    segment: SegmentMetadata,
    binding: Binding,
    pool: Sequence[str],
    narrow: bool = False,
) -> float:
    """Max over assignments of the quantified variables from ``pool``."""
    best = 0.0
    names = formula.vars
    iterate = _narrowed_pool(formula, segment, pool) if narrow else pool

    def assign(position: int, current: Binding) -> None:
        nonlocal best
        if position == len(names):
            # The *full* pool stays the universe of nested quantifiers;
            # only this node's iteration is narrowed.
            best = max(
                best, score(formula.sub, segment, current, pool, narrow)
            )
            return
        for object_id in iterate:
            extended = dict(current)
            extended[names[position]] = object_id
            assign(position + 1, extended)

    assign(0, dict(binding))
    return best


# ---------------------------------------------------------------------------
# ∃-pool narrowing
# ---------------------------------------------------------------------------
def _narrowed_pool(
    formula: ast.Exists, segment: SegmentMetadata, pool: Sequence[str]
) -> Sequence[str]:
    """Exact pool narrowing for one ``∃`` at one segment.

    When every occurrence of the quantified variables is *indiscernible* —
    ``present(v)``, an attribute-access holder ``attr(v)``, or a bare
    relationship argument — then any pool member that is neither present
    in the segment nor (when relationship arguments occur) named by one of
    its relationship tuples scores exactly like :data:`FRESH_OBJECT_ID`:
    presence 0, attribute accesses undefined, relationship tuples
    unmatched.  The fresh id is always iterated, so dropping those members
    cannot change the max.  Occurrences that can tell absent ids apart
    (a bare variable in a comparison, an unanalyzable construct) disable
    narrowing, as does the freak case of the fresh id itself being named
    by the segment's meta-data.
    """
    analysis = _exists_narrowing(formula)
    if analysis is None:
        return pool
    relevant = set(segment.object_ids())
    if analysis:  # variables occur as relationship arguments
        for relationship in segment.relationships:
            for arg in relationship.args:
                if isinstance(arg, str):
                    relevant.add(arg)
    if FRESH_OBJECT_ID in relevant:
        # The fresh id cannot faithfully represent dropped members here.
        return pool
    narrowed = [object_id for object_id in pool if object_id in relevant]
    narrowed.append(FRESH_OBJECT_ID)
    return narrowed


@lru_cache(maxsize=None)
def _exists_narrowing(formula: ast.Exists) -> Optional[bool]:
    """``None`` if narrowing is unsafe, else whether rel args matter."""
    safe, needs_rel = _narrowing_of(formula.sub, frozenset(formula.vars))
    return needs_rel if safe else None


def _narrowing_of(
    node: ast.Formula, targets: FrozenSet[str]
) -> Tuple[bool, bool]:
    """(safe, needs_rel) of the occurrences of ``targets`` under ``node``."""
    if not targets:
        return True, False
    if isinstance(node, (ast.Truth, ast.Present, ast.LooksLike)):
        # looks_like is variable-free: it scores the segment signature
        # only, so it cannot distinguish absent object ids.
        return True, False
    if isinstance(node, ast.Compare):
        left_safe, left_rel = _term_occurrences(node.left, targets)
        right_safe, right_rel = _term_occurrences(node.right, targets)
        return left_safe and right_safe, left_rel or right_rel
    if isinstance(node, ast.Rel):
        needs_rel = False
        for arg in node.args:
            if isinstance(arg, ast.ObjectVar) and arg.name in targets:
                needs_rel = True
                continue
            arg_safe, arg_rel = _term_occurrences(arg, targets)
            if not arg_safe:
                return False, False
            needs_rel = needs_rel or arg_rel
        return True, needs_rel
    if isinstance(node, (ast.Weighted, ast.Not)):
        return _narrowing_of(node.sub, targets)
    if isinstance(node, (ast.And, ast.Or)):
        left_safe, left_rel = _narrowing_of(node.left, targets)
        right_safe, right_rel = _narrowing_of(node.right, targets)
        return left_safe and right_safe, left_rel or right_rel
    if isinstance(node, ast.Exists):
        return _narrowing_of(node.sub, targets - frozenset(node.vars))
    if isinstance(node, ast.Freeze):
        func_safe, func_rel = _term_occurrences(node.func, targets)
        sub_safe, sub_rel = _narrowing_of(node.sub, targets - {node.var})
        return func_safe and sub_safe, func_rel or sub_rel
    # AtomicRef or an unknown construct: be conservative.
    return False, False


def _term_occurrences(
    term: ast.Term, targets: FrozenSet[str]
) -> Tuple[bool, bool]:
    """(safe, needs_rel) of target-variable occurrences inside a term.

    A target is safe inside a term only as an attribute-access holder;
    bare (its *value* feeds a comparison or confidence product) it could
    distinguish two absent ids, so narrowing must be disabled.
    """
    if isinstance(term, (ast.ObjectVar, ast.AttrVar)):
        return term.name not in targets, False
    if isinstance(term, ast.Const):
        return True, False
    if isinstance(term, ast.AttrFunc):
        if not term.args:
            return True, False
        holder = term.args[0]
        if isinstance(holder, (ast.ObjectVar, ast.AttrVar)):
            return True, False
        return _term_occurrences(holder, targets)
    return False, False
