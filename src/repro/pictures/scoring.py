"""Similarity scoring of non-temporal formulas on a single segment.

This is the reproduction's stand-in for the picture-retrieval scoring of
the paper's references [27, 25, 2]: a non-temporal formula is a weighted
set of conditions; the maximum similarity is the total weight (a function
of the formula alone) and the actual similarity is the weight of the
satisfied conditions, each scaled by the confidence of the meta-data facts
it matched.  Confidences below 1 are how fractional similarity values such
as the paper's 9.787 arise.

The same scorer backs both the picture-retrieval table builder and the
naive reference-semantics oracle, so atom-level agreement is by
construction; the list/table algebra is what the oracle then cross-checks.

Semantics of the pieces (``w`` is the condition weight, default 1):

* ``present(x)`` — ``w * confidence(object)`` when the bound object id
  appears in the segment, else 0.
* comparisons — ``w * conf(left) * conf(right)`` when both terms are
  defined and the comparison holds, else 0.  Cross-type ordered
  comparisons are unsatisfied; ``=``/``!=`` compare across types.
* relationships — ``w * confidence(tuple)`` when a relationship with that
  name and exactly those argument values exists in the segment.
* ``g ∧ h`` — sum of the parts; ``g ∨ h`` — best part; ``¬g`` — the
  unsatisfied weight ``m(g) - a(g)``.
* ``∃x g`` — maximum over the object universe.
* ``true`` — ``(1, 1)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.model.metadata import SegmentMetadata

#: A binding of variable names (object and attribute alike) to values.
Binding = Dict[str, Union[str, int, float]]

#: Sentinel id standing for "any object not appearing in the video".  The
#: paper's evaluations range over a *universal* set of object ids, so ∃
#: must also consider objects absent from every segment (they score zero on
#: presence/attribute/relationship conditions but may still maximise a
#: formula through its variable-free or negated conditions).  One fresh id
#: represents that whole class; see the module docstring for the known
#: approximation (two distinct unknown objects are not distinguishable).
FRESH_OBJECT_ID = "__no_such_object__"


def exists_pool(universe: Sequence[str]) -> "list[str]":
    """The pool an existential quantifier ranges over."""
    pool = [oid for oid in universe if oid != FRESH_OBJECT_ID]
    pool.append(FRESH_OBJECT_ID)
    return pool


def max_similarity(formula: ast.Formula) -> float:
    """The maximum similarity ``m`` of a non-temporal formula.

    Depends only on the formula (paper §2.5: "the maximum m is only a
    function of f").
    """
    if isinstance(formula, (ast.Truth, ast.Present, ast.Compare, ast.Rel)):
        return 1.0
    if isinstance(formula, ast.Weighted):
        return formula.weight * max_similarity(formula.sub)
    if isinstance(formula, ast.And):
        return max_similarity(formula.left) + max_similarity(formula.right)
    if isinstance(formula, ast.Or):
        return max(max_similarity(formula.left), max_similarity(formula.right))
    if isinstance(formula, ast.Not):
        return max_similarity(formula.sub)
    if isinstance(formula, ast.Exists):
        return max_similarity(formula.sub)
    if isinstance(formula, ast.Freeze):
        # A freeze with no temporal operator in scope binds within the
        # current segment only; it is a non-temporal formula (paper §2.2).
        return max_similarity(formula.sub)
    if isinstance(formula, ast.AtomicRef):
        raise UnsupportedFormulaError(
            f"atomic reference {formula.name!r} has no intrinsic maximum; "
            "its registered similarity list carries one"
        )
    raise UnsupportedFormulaError(
        f"{type(formula).__name__} is not a non-temporal formula"
    )


def eval_term(
    term: ast.Term, segment: SegmentMetadata, binding: Binding
) -> Optional[Tuple[Union[str, int, float], float]]:
    """Evaluate a term to ``(value, confidence)``; None when undefined."""
    if isinstance(term, ast.Const):
        return term.value, 1.0
    if isinstance(term, (ast.ObjectVar, ast.AttrVar)):
        if term.name not in binding:
            return None
        return binding[term.name], 1.0
    if isinstance(term, ast.AttrFunc):
        if not term.args:
            fact = segment.segment_attribute(term.name)
            return None if fact is None else (fact.value, fact.confidence)
        holder = eval_term(term.args[0], segment, binding)
        if holder is None:
            return None
        object_id, holder_confidence = holder
        if not isinstance(object_id, str):
            return None
        fact = segment.object_attribute(object_id, term.name)
        if fact is None:
            return None
        return fact.value, fact.confidence * holder_confidence
    raise UnsupportedFormulaError(f"cannot evaluate term {term!r}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(op: str, left: object, right: object) -> bool:
    """Apply a comparison operator with cross-type care.

    ``=``/``!=`` work across types (unequal types are simply unequal);
    ordered comparisons require both numbers or both strings.
    """
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    comparable = (_is_number(left) and _is_number(right)) or (
        isinstance(left, str) and isinstance(right, str)
    )
    if not comparable:
        return False
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    return left >= right  # '>='


def score(
    formula: ast.Formula,
    segment: SegmentMetadata,
    binding: Binding,
    universe: Sequence[str] = (),
) -> float:
    """Actual similarity ``a`` of a non-temporal formula at one segment.

    ``universe`` is the pool of object ids an inner ``∃`` quantifies over;
    pass the video's object universe for definitional fidelity (it defaults
    to the segment's own objects inside :func:`score_with_segment_universe`).
    """
    if isinstance(formula, ast.Truth):
        return 1.0
    if isinstance(formula, ast.Present):
        object_id = binding.get(formula.var.name)
        if not isinstance(object_id, str):
            return 0.0
        instance = segment.object(object_id)
        return instance.confidence if instance is not None else 0.0
    if isinstance(formula, ast.Compare):
        left = eval_term(formula.left, segment, binding)
        right = eval_term(formula.right, segment, binding)
        if left is None or right is None:
            return 0.0
        if compare_values(formula.op, left[0], right[0]):
            return left[1] * right[1]
        return 0.0
    if isinstance(formula, ast.Rel):
        values = []
        confidence = 1.0
        for arg in formula.args:
            evaluated = eval_term(arg, segment, binding)
            if evaluated is None:
                return 0.0
            values.append(evaluated[0])
            confidence *= evaluated[1]
        match = segment.find_relationship(formula.name, tuple(values))
        if match is None:
            return 0.0
        return confidence * match.confidence
    if isinstance(formula, ast.Weighted):
        return formula.weight * score(formula.sub, segment, binding, universe)
    if isinstance(formula, ast.And):
        return score(formula.left, segment, binding, universe) + score(
            formula.right, segment, binding, universe
        )
    if isinstance(formula, ast.Or):
        return max(
            score(formula.left, segment, binding, universe),
            score(formula.right, segment, binding, universe),
        )
    if isinstance(formula, ast.Not):
        return max_similarity(formula.sub) - score(
            formula.sub, segment, binding, universe
        )
    if isinstance(formula, ast.Exists):
        base = list(universe) if universe else list(segment.object_ids())
        return _score_exists(formula, segment, binding, exists_pool(base))
    if isinstance(formula, ast.Freeze):
        captured = eval_term(formula.func, segment, binding)
        if captured is None:
            # Capturing an undefined attribute fails the whole freeze
            # (DESIGN.md §2 convention, matching the reference semantics).
            return 0.0
        extended = dict(binding)
        extended[formula.var] = captured[0]
        return score(formula.sub, segment, extended, universe)
    raise UnsupportedFormulaError(
        f"{type(formula).__name__} is not scorable on a single segment"
    )


def _score_exists(
    formula: ast.Exists,
    segment: SegmentMetadata,
    binding: Binding,
    pool: Sequence[str],
) -> float:
    """Max over assignments of the quantified variables from ``pool``."""
    best = 0.0
    names = formula.vars

    def assign(position: int, current: Binding) -> None:
        nonlocal best
        if position == len(names):
            best = max(best, score(formula.sub, segment, current, pool))
            return
        for object_id in pool:
            extended = dict(current)
            extended[names[position]] = object_id
            assign(position + 1, extended)

    assign(0, dict(binding))
    return best
