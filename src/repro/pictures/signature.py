"""Content-signature similarity: the second picture-retrieval backend.

The paper grounds retrieval in annotation metadata and gestures (refs
[27, 25, 2]) at the content-based matching it never builds; this module
is that backend (DESIGN.md §16).  A *segment signature* is the
shot-averaged colour histogram the analyzer attaches to
:class:`~repro.model.metadata.SegmentMetadata`; a *query clip* is a tuple
of such signature windows.  The atomic predicate
``looks_like(clip, θ)`` scores a segment by its best per-window
similarity when that clears the threshold, and 0 otherwise — a closed
non-temporal atom that drops into the similarity-list algebra unchanged.

Per-window similarity blends two classic recipes:

* a histogram term, ``1 − L1/2`` over the mass-normalised vectors — the
  cut-detection dissimilarity of :mod:`repro.analyzer.features`, mapped
  to ``[0, 1]``;
* an SSIM-style structural term over the two raw vectors (means,
  variances, covariance with the standard stabilising constants),
  mapped from ``[-1, 1]`` to ``[0, 1]``.

``window_similarity = 0.5·hist + 0.5·ssim`` — both terms are bounded, so
``0.5·hist + 0.5`` is an admissible upper bound: when it already misses
θ the SSIM term cannot rescue the window, and scoring skips the
covariance pass entirely.  The short-circuit lives *here*, shared by the
indexed sweep and the naive oracle, so both paths return bit-identical
floats by construction.

Everything in this module is pure and import-light (AST + metadata +
errors only): the scoring layer calls down into it, never the reverse.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SignatureError, WorkloadError
from repro.htl import ast
from repro.model.metadata import SegmentMetadata

#: One signature window: a non-negative histogram vector.
Window = Tuple[float, ...]
#: A query clip: one or more signature windows.
Clip = Tuple[Window, ...]

#: SSIM stabilising constants for data range L = 1 (normalised
#: histograms): C1 = (0.01·L)², C2 = (0.03·L)².
SSIM_C1 = 1e-4
SSIM_C2 = 9e-4


# ---------------------------------------------------------------------------
# signature construction
# ---------------------------------------------------------------------------
def average_histograms(
    histograms: Sequence[Sequence[float]],
) -> Window:
    """The mass-normalised mean of a shot's frame histograms.

    This is the per-segment signature recipe: average the frames of the
    shot bin-wise, then normalise to unit mass so signatures of shots
    with different frame counts stay comparable.  An empty frame
    sequence (an empty ``FrameStream`` slice) and a zero-total average
    are degenerate inputs, rejected with a typed
    :class:`~repro.errors.WorkloadError` rather than divided by.
    """
    if not histograms:
        raise WorkloadError(
            "cannot build a signature from an empty frame sequence"
        )
    width = len(histograms[0])
    sums = [0.0] * width
    for histogram in histograms:
        if len(histogram) != width:
            raise WorkloadError(
                f"ragged frame histograms: {len(histogram)} bins after "
                f"{width}"
            )
        for position, bin_value in enumerate(histogram):
            sums[position] += bin_value
    total = sum(sums)
    if total <= 0.0 or not math.isfinite(total):
        raise WorkloadError(
            "cannot build a signature from zero-total frame histograms"
        )
    return tuple(bin_value / total for bin_value in sums)


def clip_from_segments(segments: Sequence[SegmentMetadata]) -> Clip:
    """The query clip formed by the segments' attached signatures.

    Query-by-example: the user names stored segments and their
    signatures become the clip windows.  A segment without a signature
    cannot serve as an example and raises a typed
    :class:`~repro.errors.SignatureError`.
    """
    if not segments:
        raise SignatureError("a query clip needs at least one segment")
    windows: List[Window] = []
    for position, segment in enumerate(segments, start=1):
        if segment.signature is None:
            raise SignatureError(
                f"example segment {position} carries no content signature; "
                "only analyzer-annotated segments can seed query-by-example"
            )
        windows.append(segment.signature)
    return tuple(windows)


def looks_like_atom(
    clip: Sequence[Sequence[float]], theta: float, name: str = ""
) -> ast.LooksLike:
    """A resolved ``looks_like`` atom over explicit signature windows."""
    windows = tuple(
        tuple(float(bin_value) for bin_value in window) for window in clip
    )
    if not windows:
        raise SignatureError("a looks_like atom needs at least one window")
    return ast.LooksLike(theta=float(theta), clip=windows, name=name)


# ---------------------------------------------------------------------------
# clip resolution
# ---------------------------------------------------------------------------
def unresolved_clip_names(formula: ast.Formula) -> List[str]:
    """Clip names referenced by unresolved ``looks_like`` atoms, in
    first-appearance order."""
    names: List[str] = []
    for node in formula.walk():
        if (
            isinstance(node, ast.LooksLike)
            and not node.resolved
            and node.name not in names
        ):
            names.append(node.name)
    return names


def resolve_clips(
    formula: ast.Formula, clips: Mapping[str, Sequence[Sequence[float]]]
) -> ast.Formula:
    """Rewrite unresolved ``looks_like`` atoms to carry their windows.

    The parser leaves clip references by name; evaluation needs the
    windows inline.  Unknown names raise a typed
    :class:`~repro.errors.SignatureError`; a formula with no unresolved
    atoms is returned unchanged (same object).
    """
    if isinstance(formula, ast.LooksLike):
        if formula.resolved:
            return formula
        clip = clips.get(formula.name)
        if clip is None:
            known = ", ".join(sorted(clips)) or "none"
            raise SignatureError(
                f"unresolved clip reference {formula.name!r}; known clips: "
                f"{known}"
            )
        return looks_like_atom(clip, formula.theta, name=formula.name)
    changes: Dict[str, ast.Formula] = {}
    for spec in dataclasses.fields(formula):
        value = getattr(formula, spec.name)
        if isinstance(value, ast.Formula):
            rebuilt = resolve_clips(value, clips)
            if rebuilt is not value:
                changes[spec.name] = rebuilt
    if not changes:
        return formula
    return dataclasses.replace(formula, **changes)


# ---------------------------------------------------------------------------
# similarity
# ---------------------------------------------------------------------------
def ssim_score(first: Sequence[float], second: Sequence[float]) -> float:
    """SSIM-style structural similarity of two vectors, in ``[-1, 1]``.

    The classic single-window formula — means, variances and covariance
    with stabilising constants — applied to the whole signature vector
    (our "window" is the vector itself; there is no sliding).
    """
    count = len(first)
    mean_a = sum(first) / count
    mean_b = sum(second) / count
    var_a = sum((value - mean_a) ** 2 for value in first) / count
    var_b = sum((value - mean_b) ** 2 for value in second) / count
    covariance = (
        sum(
            (a - mean_a) * (b - mean_b)
            for a, b in zip(first, second)
        )
        / count
    )
    numerator = (2.0 * mean_a * mean_b + SSIM_C1) * (
        2.0 * covariance + SSIM_C2
    )
    denominator = (mean_a**2 + mean_b**2 + SSIM_C1) * (
        var_a + var_b + SSIM_C2
    )
    value = numerator / denominator
    # Float round-off can push a hair past the theoretical range.
    return max(-1.0, min(1.0, value))


def _l1_distance(first: Sequence[float], second: Sequence[float]) -> float:
    total_a = sum(first)
    total_b = sum(second)
    if total_a <= 0.0 or total_b <= 0.0:
        raise SignatureError(
            "cannot compare zero-total signature vectors"
        )
    return sum(
        abs(a / total_a - b / total_b) for a, b in zip(first, second)
    )


def _check_comparable(
    first: Sequence[float], second: Sequence[float]
) -> None:
    if len(first) != len(second) or not first:
        raise SignatureError(
            f"signature vectors must share a nonzero bin count, got "
            f"{len(first)} and {len(second)}"
        )


def window_similarity(
    first: Sequence[float], second: Sequence[float]
) -> float:
    """Blended similarity of two signature vectors, in ``[0, 1]``.

    ``0.5 · (1 − L1/2) + 0.5 · (ssim + 1)/2`` — the histogram term over
    the mass-normalised vectors, the SSIM term over the raw vectors.
    """
    _check_comparable(first, second)
    histogram_term = 1.0 - _l1_distance(first, second) / 2.0
    structural_term = (ssim_score(first, second) + 1.0) / 2.0
    return 0.5 * histogram_term + 0.5 * structural_term


def window_bound(first: Sequence[float], second: Sequence[float]) -> float:
    """An admissible upper bound on :func:`window_similarity`.

    Costs one L1 pass; the SSIM term is bounded by 1, so
    ``0.5·(1 − L1/2) + 0.5`` can never understate the similarity.
    """
    _check_comparable(first, second)
    return 0.5 * (1.0 - _l1_distance(first, second) / 2.0) + 0.5


def looks_like_score(
    atom: ast.LooksLike, signature: Optional[Window]
) -> float:
    """Actual similarity of one ``looks_like`` atom at one segment.

    The best per-window similarity when it clears θ, else 0.  A segment
    without a signature (annotation-only metadata, the representative
    empty segment of baseline probes) scores 0 — it cannot look like
    anything.  Windows whose cheap L1 bound already misses θ skip the
    SSIM pass; a window with true similarity ≥ θ always survives the
    bound, so the thresholded result is exactly the unpruned one.
    """
    if not atom.resolved:
        raise SignatureError(
            f"unresolved clip reference {atom.name!r}; resolve_clips() "
            "must run before evaluation"
        )
    if signature is None:
        return 0.0
    best = 0.0
    for window in atom.clip:
        if window_bound(signature, window) < atom.theta:
            continue
        similarity = window_similarity(signature, window)
        if similarity > best:
            best = similarity
    return best if best >= atom.theta else 0.0


# ---------------------------------------------------------------------------
# planner statistics
# ---------------------------------------------------------------------------
def looks_like_atoms(formula: ast.Formula) -> List[ast.LooksLike]:
    """Every ``looks_like`` atom inside a formula, in pre-order."""
    return [
        node for node in formula.walk() if isinstance(node, ast.LooksLike)
    ]


def signature_match_rate(
    atom: ast.LooksLike,
    signatures: Sequence[Optional[Window]],
    sample_cap: int = 64,
) -> float:
    """Estimated fraction of segments whose signature clears the atom's θ.

    The planner's selectivity statistic for signature atoms: an evenly
    strided deterministic sample of at most ``sample_cap`` segment
    signatures is scored against the clip.  Signature-less segments
    count as non-matching (they score 0).  An unresolved atom has no
    measurable clip; it reports 1.0 (no pricing information).
    """
    if not atom.resolved or not signatures:
        return 1.0
    count = len(signatures)
    stride = max(1, count // max(1, sample_cap))
    sampled = 0
    matched = 0
    for position in range(0, count, stride):
        sampled += 1
        if looks_like_score(atom, signatures[position]) > 0.0:
            matched += 1
    if not sampled:
        return 1.0
    return matched / sampled
