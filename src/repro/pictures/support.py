"""Support-set analysis for index-driven atom evaluation.

The naive picture-retrieval path scores every (binding × segment) pair by
a full recursive formula walk.  But for a fixed binding, a non-temporal
formula's similarity at a segment can differ from its **baseline score**
— the score on a segment with no meta-data at all — only where some fact
the formula can probe is actually defined.  Those segments are exactly
what the :class:`~repro.pictures.index.MetadataIndex` posting lists
enumerate, so per atom and binding we compute:

* a **candidate set**: the union of the posting lists of every fact the
  formula may probe under the binding (``None`` means "every segment" —
  the analysis found a construct it cannot bound).  Off the candidate
  set the score provably equals the baseline, which is nonzero under
  ``¬`` and ``∨`` — the baseline is emitted as interval runs over the
  complement, never expanded per segment.
* an optional **fingerprint plan**: the closed list of fact probes the
  score depends on.  Two candidate segments with identical probe results
  have identical scores, so scoring memoizes on the fingerprint —
  run-compressed scoring.  Quantified (``∃``) variables range over the
  evaluation pool, which is *fixed across segments*, so their probes are
  expanded over the pool (presence of each pool id, each pool id's
  probed attributes); only constructs the analysis cannot close — a
  nested attribute holder, an unknown node — get ``plan=None`` and are
  scored per candidate segment.

Correctness argument (DESIGN.md §7): the candidate set of every
construct *over-approximates* the segments where any referenced fact is
defined, by structural induction — leaves take the posting list of the
fact they probe, connectives take unions, ``¬`` keeps its operand's set
(its baseline is ``m - baseline(sub)``), ``∃`` analyses its body with
the quantified variables marked (``present(x)`` widens to the union of
the pool ids' posting lists — every object an assignment can pick),
and the freeze operator needs only its captured function's set (an
undefined capture scores 0, the freeze baseline).  Off the set every
probe resolves to "undefined/absent" exactly as on the empty segment,
so the recursive score follows the identical code path and returns the
identical float.

Fingerprint purity under ``∃``-narrowing: the scorer's exact pool
narrowing (:func:`repro.pictures.scoring.score` with ``narrow=True``)
iterates a segment-dependent subset of the pool but provably returns
the full-pool score; the full-pool score reads only the probed facts
(per pool assignment, a quantified variable's value is the — segment
independent — pool id itself), so equal fingerprints still imply equal
scores even though the narrowed iteration sets may differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core import resilience
from repro.htl import ast
from repro.model.metadata import SegmentMetadata
from repro.pictures.index import MetadataIndex
from repro.pictures.scoring import FRESH_OBJECT_ID

#: A binding of variable names to values (mirrors repro.pictures.scoring).
Binding = Dict[str, Union[str, int, float]]

#: Sentinel: a term that is statically known to be undefined everywhere.
_UNDEFINED = object()

#: Static term resolution: (known, value).  ``known=True`` with
#: ``value=_UNDEFINED`` means "defined nowhere"; ``known=False`` means the
#: value varies by segment or by a quantified-variable extension.
_Static = Tuple[bool, object]

_NOT_STATIC: _Static = (False, None)


@dataclass
class Probes:
    """The closed set of meta-data facts a score can depend on.

    ``pool_presence`` / ``pool_attr_names`` are the pool-expanded probe
    families of quantified variables: rather than probing every pool id
    individually, the fingerprint records the segment's present pool
    members (with confidences, resp. the named attribute facts) — the
    same information, gathered by iterating the segment's few objects
    instead of the whole pool.
    """

    objects: Set[str] = field(default_factory=set)
    object_attrs: Set[Tuple[str, str]] = field(default_factory=set)
    segment_attrs: Set[str] = field(default_factory=set)
    rel_tuples: Set[Tuple[str, tuple]] = field(default_factory=set)
    rel_names: Set[str] = field(default_factory=set)
    pool_presence: bool = False
    pool_attr_names: Set[str] = field(default_factory=set)
    #: A looks_like atom reads the segment's content signature.
    signature: bool = False

    def merge(self, other: "Probes") -> None:
        self.objects |= other.objects
        self.object_attrs |= other.object_attrs
        self.segment_attrs |= other.segment_attrs
        self.rel_tuples |= other.rel_tuples
        self.rel_names |= other.rel_names
        self.pool_presence = self.pool_presence or other.pool_presence
        self.pool_attr_names |= other.pool_attr_names
        self.signature = self.signature or other.signature


class FingerprintPlan:
    """Compiled probe order: maps a segment to its relevance fingerprint.

    Segments with equal fingerprints are indistinguishable to the atom
    under its binding, so one score per fingerprint suffices.
    """

    __slots__ = (
        "objects",
        "object_attrs",
        "segment_attrs",
        "rel_tuples",
        "rel_names",
        "pool_presence",
        "pool_attr_names",
        "signature",
        "pool_set",
    )

    def __init__(self, probes: Probes, pool: Tuple[str, ...] = ()):
        self.objects = tuple(sorted(probes.objects))
        self.object_attrs = tuple(sorted(probes.object_attrs))
        self.segment_attrs = tuple(sorted(probes.segment_attrs))
        self.rel_tuples = tuple(
            sorted(probes.rel_tuples, key=lambda probe: (probe[0], repr(probe[1])))
        )
        self.rel_names = tuple(sorted(probes.rel_names))
        self.pool_presence = probes.pool_presence
        self.pool_attr_names = tuple(sorted(probes.pool_attr_names))
        self.signature = probes.signature
        self.pool_set = frozenset(pool)

    def fingerprint(self, segment: SegmentMetadata) -> tuple:
        parts: list = []
        append = parts.append
        if self.signature:
            append(segment.signature)
        for object_id in self.objects:
            instance = segment.object(object_id)
            append(None if instance is None else instance.confidence)
        for object_id, name in self.object_attrs:
            fact = segment.object_attribute(object_id, name)
            append(None if fact is None else (fact.value, fact.confidence))
        for name in self.segment_attrs:
            fact = segment.segment_attribute(name)
            append(None if fact is None else (fact.value, fact.confidence))
        for name, args in self.rel_tuples:
            match = segment.find_relationship(name, args)
            append(None if match is None else match.confidence)
        for name in self.rel_names:
            append(
                tuple(
                    (rel.args, rel.confidence)
                    for rel in segment.relationships_named(name)
                )
            )
        if self.pool_presence or self.pool_attr_names:
            pool_set = self.pool_set
            members = [
                instance
                for instance in segment.objects()
                if instance.object_id in pool_set
            ]
            if len(members) > 1:
                members.sort(key=lambda instance: instance.object_id)
            if self.pool_presence:
                append(
                    tuple(
                        (instance.object_id, instance.confidence)
                        for instance in members
                    )
                )
            for name in self.pool_attr_names:
                facts = []
                for instance in members:
                    fact = instance.attribute(name)
                    if fact is not None:
                        facts.append(
                            (instance.object_id, fact.value, fact.confidence)
                        )
                append(tuple(facts))
        return tuple(parts)


#: Candidate-density cutoff: a candidate set covering at least this
#: fraction of the sequence is demoted to "every segment" (DESIGN.md §16).
#: Near-universal postings make the per-segment candidate bookkeeping
#: cost more than it saves — the sweep visits (almost) everything either
#: way — so the analysis reports an unbounded support and the sweep walks
#: the sequence directly, keeping the fingerprint plan for memoization.
#: Sound by the same contract that makes bounded supports correct:
#: off-candidate segments score the baseline, and the direct sweep simply
#: computes that same value.
DENSE_CUTOFF = 0.5


@dataclass(frozen=True)
class AtomSupport:
    """Result of the analysis for one (atom, binding) pair.

    ``candidates`` is the sorted tuple of 1-based segment ids where the
    score may differ from the baseline, or ``None`` for "every segment".
    ``plan`` is the fingerprint plan, or ``None`` when the atom must be
    scored per candidate segment.  ``dense`` marks a support whose
    bounded candidate set was demoted to unbounded by the
    :data:`DENSE_CUTOFF` density rule.
    """

    candidates: Optional[Tuple[int, ...]]
    plan: Optional[FingerprintPlan]
    dense: bool = False

    def covers(self, segment_id: int) -> bool:
        return self.candidates is None or segment_id in self.candidates


#: Internal analysis result: (support ids or None-for-all, probes or
#: None-for-unfingerprintable).
_Info = Tuple[Optional[Set[int]], Optional[Probes]]


def _union(
    left: Optional[Set[int]], right: Optional[Set[int]]
) -> Optional[Set[int]]:
    if left is None or right is None:
        return None
    return left | right


def _merge_probes(
    left: Optional[Probes], right: Optional[Probes]
) -> Optional[Probes]:
    if left is None or right is None:
        return None
    merged = Probes()
    merged.merge(left)
    merged.merge(right)
    return merged


class SupportAnalyzer:
    """Per-sequence analyzer resolving probes against a MetadataIndex."""

    def __init__(self, index: MetadataIndex):
        self._index = index
        self._pool_postings_cache: Dict[Tuple[str, ...], Set[int]] = {}

    # ------------------------------------------------------------------
    def atom_support(
        self,
        atom: ast.Formula,
        binding: Binding,
        pool: Sequence[str] = (),
        charge: bool = True,
    ) -> AtomSupport:
        """Candidate set and fingerprint plan for one (atom, binding).

        ``pool`` is the object universe quantified (``∃``) variables
        range over; their probes are expanded over it.  The fresh-object
        sentinel carries no meta-data and is dropped.

        ``charge=False`` skips the budget step charge: planner probes
        estimate evaluation cost without performing evaluation work, so
        they must not perturb a query's step accounting.
        """
        budget = resilience.current_budget()
        if charge and budget is not None:
            budget.charge(1, site="atom-scoring")
        pool_ids = tuple(
            object_id
            for object_id in pool
            if isinstance(object_id, str) and object_id != FRESH_OBJECT_ID
        )
        support, probes = self._formula(
            atom, binding, frozenset(), frozenset(), pool_ids
        )
        candidates = None if support is None else tuple(sorted(support))
        plan = None if probes is None else FingerprintPlan(probes, pool_ids)
        dense = False
        if (
            candidates is not None
            and self._index.n_segments
            and len(candidates) >= DENSE_CUTOFF * self._index.n_segments
        ):
            # Density cutoff: materialising near-universal postings in the
            # sweep's per-segment job lists costs more than the baseline
            # runs they would save.  Demote to an unbounded support — the
            # sweep walks the sequence directly and the planner prices the
            # atom as a sweep.
            candidates = None
            dense = True
        return AtomSupport(candidates, plan, dense)

    def _pool_postings(self, pool: Tuple[str, ...]) -> Set[int]:
        """Union of the pool ids' presence posting lists (do not mutate)."""
        cached = self._pool_postings_cache.get(pool)
        if cached is None:
            cached = set()
            for object_id in pool:
                cached.update(self._index.segments_with_object(object_id))
            self._pool_postings_cache[pool] = cached
        return cached

    def term_candidates(
        self, term: ast.Term, binding: Binding
    ) -> Optional[Tuple[int, ...]]:
        """Segments where the term may be defined (None = all).

        Outside the returned set the term evaluates to ``None``
        (undefined) — used to restrict the attribute-variable boundary
        scan to segments that can contribute a value.
        """
        support, __, ___, static = self._term(
            term, binding, frozenset(), frozenset(), ()
        )
        known, value = static
        if known:
            if value is _UNDEFINED:
                return ()
            # Constant across segments: one representative suffices.
            return (1,) if self._index.n_segments else ()
        return None if support is None else tuple(sorted(support))

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------
    def _term(
        self,
        term: ast.Term,
        binding: Binding,
        exists_vars: FrozenSet[str],
        frozen_vars: FrozenSet[str],
        pool: Tuple[str, ...],
    ) -> Tuple[Optional[Set[int]], Optional[Probes], bool, _Static]:
        """(support, probes, fingerprintable, static value) of a term."""
        if isinstance(term, ast.Const):
            return set(), Probes(), True, (True, term.value)
        if isinstance(term, (ast.ObjectVar, ast.AttrVar)):
            name = term.name
            if name in exists_vars:
                # Quantified object variable: per pool assignment its
                # value is the (segment-independent) pool id itself, so
                # the bare occurrence adds no probes.
                return set(), Probes(), True, _NOT_STATIC
            if name in frozen_vars:
                # Freeze-captured attribute variable: its value is a
                # function of the capture probe, which the enclosing
                # Freeze analysis adds to the plan.
                return set(), Probes(), True, _NOT_STATIC
            if name in binding:
                return set(), Probes(), True, (True, binding[name])
            # Unbound and unquantified: eval_term is None everywhere.
            return set(), Probes(), True, (True, _UNDEFINED)
        if isinstance(term, ast.AttrFunc):
            if not term.args:
                support = set(
                    self._index.segments_with_attribute_name(term.name)
                )
                probes = Probes(segment_attrs={term.name})
                return support, probes, True, _NOT_STATIC
            holder = term.args[0]
            if (
                isinstance(holder, (ast.ObjectVar, ast.AttrVar))
                and holder.name in exists_vars
            ):
                # Quantified holder: per assignment the access reads one
                # pool id's attribute, and it is defined only where that
                # pool object is present — probe the named attribute of
                # every present pool member.
                probes = Probes(pool_attr_names={term.name})
                support = set(self._pool_postings(pool))
                return support, probes, True, _NOT_STATIC
            holder_support, holder_probes, holder_fp, holder_static = (
                self._term(holder, binding, exists_vars, frozen_vars, pool)
            )
            known, value = holder_static
            if known:
                if isinstance(value, str):
                    support = set(self._index.segments_with_object(value))
                    probes = _merge_probes(
                        holder_probes, Probes(object_attrs={(value, term.name)})
                    )
                    return support, probes, holder_fp, _NOT_STATIC
                # Non-string holder (including _UNDEFINED): the attribute
                # access is undefined on every segment.
                return set(), Probes(), True, (True, _UNDEFINED)
            # Holder varies by segment (a nested attribute access or a
            # freeze capture): the access can only be defined where the
            # segment holds some object, but which object is probed is
            # itself segment-dependent — not a closed probe set.
            support = _union(
                set(self._index.segments_with_any_object()), holder_support
            )
            return support, None, False, _NOT_STATIC
        # Unknown term kind: no bound derivable; scoring will raise the
        # same error the naive path raises.
        return None, None, False, _NOT_STATIC

    # ------------------------------------------------------------------
    # formulas
    # ------------------------------------------------------------------
    def _formula(
        self,
        formula: ast.Formula,
        binding: Binding,
        exists_vars: FrozenSet[str],
        frozen_vars: FrozenSet[str],
        pool: Tuple[str, ...],
    ) -> _Info:
        if isinstance(formula, ast.Truth):
            return set(), Probes()
        if isinstance(formula, ast.Present):
            name = formula.var.name
            if name in exists_vars:
                # Some assignment scores nonzero exactly where a pool
                # object is present; probe the present pool members.
                return (
                    set(self._pool_postings(pool)),
                    Probes(pool_presence=True),
                )
            value = binding.get(name)
            if isinstance(value, str):
                return (
                    set(self._index.segments_with_object(value)),
                    Probes(objects={value}),
                )
            # Non-string or missing binding: scores 0 on every segment.
            return set(), Probes()
        if isinstance(formula, ast.Compare):
            l_support, l_probes, l_fp, __ = self._term(
                formula.left, binding, exists_vars, frozen_vars, pool
            )
            r_support, r_probes, r_fp, __ = self._term(
                formula.right, binding, exists_vars, frozen_vars, pool
            )
            probes = _merge_probes(l_probes, r_probes)
            if not (l_fp and r_fp):
                probes = None
            return _union(l_support, r_support), probes
        if isinstance(formula, ast.Rel):
            support: Optional[Set[int]] = set(
                self._index.segments_with_relationship(formula.name)
            )
            probes: Optional[Probes] = Probes()
            statics = []
            for arg in formula.args:
                __, arg_probes, arg_fp, arg_static = self._term(
                    arg, binding, exists_vars, frozen_vars, pool
                )
                probes = _merge_probes(probes, arg_probes)
                if not arg_fp:
                    probes = None
                statics.append(arg_static)
            if probes is not None:
                if all(known for known, __ in statics):
                    values = tuple(value for __, value in statics)
                    if any(value is _UNDEFINED for value in values):
                        # An undefined argument zeroes the predicate
                        # everywhere — constant, no probes needed.
                        return set(), Probes()
                    probes.rel_tuples.add((formula.name, values))
                else:
                    # Argument values vary by segment: the score depends
                    # on the full list of same-named relationships.
                    probes.rel_names.add(formula.name)
            return support, probes
        if isinstance(formula, ast.Weighted):
            return self._formula(
                formula.sub, binding, exists_vars, frozen_vars, pool
            )
        if isinstance(formula, (ast.And, ast.Or)):
            l_support, l_probes = self._formula(
                formula.left, binding, exists_vars, frozen_vars, pool
            )
            r_support, r_probes = self._formula(
                formula.right, binding, exists_vars, frozen_vars, pool
            )
            return _union(l_support, r_support), _merge_probes(
                l_probes, r_probes
            )
        if isinstance(formula, ast.Not):
            return self._formula(
                formula.sub, binding, exists_vars, frozen_vars, pool
            )
        if isinstance(formula, ast.LooksLike):
            # The score reads the segment's content signature and nothing
            # else.  A segment without one scores the atom's baseline
            # (0, exactly the representative empty segment's score), so
            # the signature-bearing segments are a sound candidate set;
            # the fingerprint is the signature itself.
            return (
                set(self._index.segments_with_signature()),
                Probes(signature=True),
            )
        if isinstance(formula, ast.Exists):
            # Quantified variables shadow outer bindings and freezes.
            inner_exists = exists_vars | frozenset(formula.vars)
            inner_frozen = frozen_vars - frozenset(formula.vars)
            support, probes = self._formula(
                formula.sub, binding, inner_exists, inner_frozen, pool
            )
            # The body's support with the variables marked quantified
            # contains the support under every pool assignment, and the
            # pool is fixed across segments, so the body's pool-expanded
            # probes close over everything the max can depend on.
            return support, probes
        if isinstance(formula, ast.Freeze):
            func_support, func_probes, func_fp, __ = self._term(
                formula.func, binding, exists_vars, frozen_vars, pool
            )
            inner_frozen = frozen_vars | {formula.var}
            inner_exists = exists_vars - {formula.var}
            __, sub_probes = self._formula(
                formula.sub, binding, inner_exists, inner_frozen, pool
            )
            # Off the capture's support the capture is undefined and the
            # whole freeze scores 0 — its baseline — so the body's
            # support is not needed for candidates, only its probes for
            # the fingerprint.
            probes = _merge_probes(func_probes, sub_probes)
            if not func_fp:
                probes = None
            return func_support, probes
        # AtomicRef or any non-temporal construct the scorer does not
        # handle: no bound derivable; scoring raises exactly as the
        # naive path would.
        return None, None
