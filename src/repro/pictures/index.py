"""Inverted indices over segment meta-data.

The picture-retrieval systems the paper builds on ([27, 25, 2]) answer
atomic queries "employing indices on the meta-data"; this module provides
the equivalent: postings lists from objects, types, relationship names and
segment attributes to 1-based segment ids.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.model.metadata import AttrValue, SegmentMetadata


class MetadataIndex:
    """Postings lists for one sequence of segments (ids are 1-based)."""

    def __init__(self, segments: Sequence[SegmentMetadata]):
        self.n_segments = len(segments)
        self._by_object: Dict[str, List[int]] = {}
        self._by_type: Dict[str, List[int]] = {}
        self._by_relationship: Dict[str, List[int]] = {}
        self._by_segment_attr: Dict[Tuple[str, AttrValue], List[int]] = {}
        self._objects_of_type: Dict[str, List[str]] = {}
        object_types_seen: Dict[Tuple[str, str], None] = {}
        for segment_id, segment in enumerate(segments, start=1):
            for instance in segment.objects():
                self._by_object.setdefault(instance.object_id, []).append(
                    segment_id
                )
                self._by_type.setdefault(instance.type, []).append(segment_id)
                type_key = (instance.type, instance.object_id)
                if type_key not in object_types_seen:
                    object_types_seen[type_key] = None
                    self._objects_of_type.setdefault(instance.type, []).append(
                        instance.object_id
                    )
            for relationship in segment.relationships:
                self._by_relationship.setdefault(
                    relationship.name, []
                ).append(segment_id)
            for name, fact in segment.attributes.items():
                self._by_segment_attr.setdefault(
                    (name, fact.value), []
                ).append(segment_id)

    # -- postings -----------------------------------------------------------
    def segments_with_object(self, object_id: str) -> List[int]:
        """Ids of segments in which the object appears."""
        return list(self._by_object.get(object_id, []))

    def segments_with_type(self, type_name: str) -> List[int]:
        """Ids of segments containing at least one object of the type."""
        postings = self._by_type.get(type_name, [])
        deduplicated: List[int] = []
        for segment_id in postings:
            if not deduplicated or deduplicated[-1] != segment_id:
                deduplicated.append(segment_id)
        return deduplicated

    def segments_with_relationship(self, name: str) -> List[int]:
        """Ids of segments containing a relationship with the name."""
        postings = self._by_relationship.get(name, [])
        deduplicated: List[int] = []
        for segment_id in postings:
            if not deduplicated or deduplicated[-1] != segment_id:
                deduplicated.append(segment_id)
        return deduplicated

    def segments_with_attribute(
        self, name: str, value: AttrValue
    ) -> List[int]:
        """Ids of segments whose segment attribute has exactly the value."""
        return list(self._by_segment_attr.get((name, value), []))

    # -- object universe ------------------------------------------------------
    def all_object_ids(self) -> List[str]:
        """Every universal object id appearing in the sequence."""
        return list(self._by_object)

    def object_ids_of_type(self, type_name: str) -> List[str]:
        """Object ids having the given type in some segment."""
        return list(self._objects_of_type.get(type_name, []))
