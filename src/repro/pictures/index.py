"""Inverted indices over segment meta-data.

The picture-retrieval systems the paper builds on ([27, 25, 2]) answer
atomic queries "employing indices on the meta-data"; this module provides
the equivalent: postings lists from objects, types, relationship names and
segment attributes to 1-based segment ids.

Postings are deduplicated once, at construction, and stored as sorted
tuples; accessors return the stored tuples directly (no per-call copies),
so the support-set analysis of :mod:`repro.pictures.support` can
intersect/union them without paying a rebuild per atom per binding.

Construction also assigns every segment a **content profile id**: two
segments share a profile exactly when their full meta-data is equal up
to reordering (of objects, attributes and relationships).  Scoring is
invariant under those reorderings, so the index-driven evaluator can
reuse a score across same-profile segments without re-probing anything.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ModelError
from repro.model.metadata import AttrValue, SegmentMetadata

#: The shared empty postings tuple.
_EMPTY: Tuple[int, ...] = ()


def _frozen(postings: Dict[str, List[int]]) -> "Dict[str, Tuple[int, ...]]":
    return {key: tuple(values) for key, values in postings.items()}


def _length_summary(lengths: List[int]) -> Dict[str, float]:
    """Mean / p50 / p90 / max of one family's posting-list lengths.

    Percentiles use the nearest-rank method over the sorted lengths, so
    the summary is exact and stable for the handful-of-keys families
    typical here; everything is 0 for an empty family.
    """
    if not lengths:
        return {"mean": 0.0, "p50": 0, "p90": 0, "max": 0}
    ordered = sorted(lengths)
    count = len(ordered)

    def rank(fraction: float) -> int:
        position = max(1, math.ceil(fraction * count))
        return ordered[min(count, position) - 1]

    return {
        "mean": sum(ordered) / count,
        "p50": rank(0.50),
        "p90": rank(0.90),
        "max": ordered[-1],
    }


def _content_key(segment: SegmentMetadata) -> tuple:
    """Canonical, order-insensitive key of a segment's full meta-data.

    Mixed-type values make direct tuple comparison unsafe, so the sorts
    key on ``repr`` — deterministic and total over our value types.
    """
    objects = tuple(
        sorted(
            (
                (
                    instance.object_id,
                    instance.type,
                    instance.confidence,
                    tuple(
                        sorted(
                            (
                                (name, fact.value, fact.confidence)
                                for name, fact in instance.attributes.items()
                            ),
                            key=repr,
                        )
                    ),
                )
                for instance in segment.objects()
            ),
            key=repr,
        )
    )
    attributes = tuple(
        sorted(
            (
                (name, fact.value, fact.confidence)
                for name, fact in segment.attributes.items()
            ),
            key=repr,
        )
    )
    relationships = tuple(
        sorted(
            (
                (rel.name, rel.args, rel.confidence)
                for rel in segment.relationships
            ),
            key=repr,
        )
    )
    # The content signature participates in the profile key: equal
    # profiles promise equal scores for *every* atom, and looks_like()
    # atoms score the signature, so two segments with equal E-R metadata
    # but different signatures must not share a profile.
    return objects, attributes, relationships, segment.signature


class MetadataIndex:
    """Postings lists for one sequence of segments (ids are 1-based)."""

    def __init__(self, segments: Sequence[SegmentMetadata]):
        self.n_segments = len(segments)
        by_object: Dict[str, List[int]] = {}
        by_type: Dict[str, List[int]] = {}
        by_relationship: Dict[str, List[int]] = {}
        by_segment_attr: Dict[Tuple[str, AttrValue], List[int]] = {}
        by_attr_name: Dict[str, List[int]] = {}
        with_any_object: List[int] = []
        with_signature: List[int] = []
        self._objects_of_type: Dict[str, List[str]] = {}
        object_types_seen: Dict[Tuple[str, str], None] = {}
        for segment_id, segment in enumerate(segments, start=1):
            if segment.signature is not None:
                with_signature.append(segment_id)
            saw_object = False
            for instance in segment.objects():
                saw_object = True
                by_object.setdefault(instance.object_id, []).append(
                    segment_id
                )
                type_postings = by_type.setdefault(instance.type, [])
                if not type_postings or type_postings[-1] != segment_id:
                    type_postings.append(segment_id)
                type_key = (instance.type, instance.object_id)
                if type_key not in object_types_seen:
                    object_types_seen[type_key] = None
                    self._objects_of_type.setdefault(instance.type, []).append(
                        instance.object_id
                    )
            if saw_object:
                with_any_object.append(segment_id)
            for relationship in segment.relationships:
                rel_postings = by_relationship.setdefault(
                    relationship.name, []
                )
                if not rel_postings or rel_postings[-1] != segment_id:
                    rel_postings.append(segment_id)
            for name, fact in segment.attributes.items():
                by_segment_attr.setdefault((name, fact.value), []).append(
                    segment_id
                )
                by_attr_name.setdefault(name, []).append(segment_id)
        self._by_object: Dict[str, Tuple[int, ...]] = _frozen(by_object)
        self._by_type: Dict[str, Tuple[int, ...]] = _frozen(by_type)
        self._by_relationship: Dict[str, Tuple[int, ...]] = _frozen(
            by_relationship
        )
        self._by_segment_attr: Dict[Tuple[str, AttrValue], Tuple[int, ...]] = {
            key: tuple(values) for key, values in by_segment_attr.items()
        }
        self._by_attr_name: Dict[str, Tuple[int, ...]] = _frozen(by_attr_name)
        self._with_any_object: Tuple[int, ...] = tuple(with_any_object)
        self._with_signature: Tuple[int, ...] = tuple(with_signature)
        profile_ids: Dict[tuple, int] = {}
        self._segment_profiles: Tuple[int, ...] = tuple(
            profile_ids.setdefault(_content_key(segment), len(profile_ids))
            for segment in segments
        )
        self.n_profiles = len(profile_ids)
        # Retained so append_segments assigns the same profile ids a full
        # rebuild would.  None after from_dict: the persisted document has
        # no content keys, so appends to a restored index open a fresh id
        # space above n_profiles (equal ids still imply equal content —
        # only cross-boundary sharing is lost).
        self._profile_keys: Optional[Dict[tuple, int]] = profile_ids

    # -- incremental maintenance ----------------------------------------------
    def append_segments(self, segments: Sequence[SegmentMetadata]) -> int:
        """Extend the index over ``segments`` appended after the current
        sequence; returns the new segment count.

        Every postings family, the type pools, the content profiles and
        therefore :meth:`stats` are updated in place — no rebuild.  New ids
        continue the 1-based numbering, and because appends only ever add
        larger ids at the tails of posting tuples, the result is
        element-for-element identical to an index built over the full
        sequence (property-tested), except possibly for profile ids after
        a :meth:`from_dict` restore (see ``_profile_keys``).
        """
        if not segments:
            return self.n_segments
        by_object: Dict[str, List[int]] = {}
        by_type: Dict[str, List[int]] = {}
        by_relationship: Dict[str, List[int]] = {}
        by_segment_attr: Dict[Tuple[str, AttrValue], List[int]] = {}
        by_attr_name: Dict[str, List[int]] = {}
        with_any_object: List[int] = []
        with_signature: List[int] = []
        typed_seen = {
            (type_name, object_id)
            for type_name, object_ids in self._objects_of_type.items()
            for object_id in object_ids
        }
        for segment_id, segment in enumerate(
            segments, start=self.n_segments + 1
        ):
            if segment.signature is not None:
                with_signature.append(segment_id)
            saw_object = False
            for instance in segment.objects():
                saw_object = True
                by_object.setdefault(instance.object_id, []).append(
                    segment_id
                )
                type_postings = by_type.setdefault(instance.type, [])
                if not type_postings or type_postings[-1] != segment_id:
                    type_postings.append(segment_id)
                type_key = (instance.type, instance.object_id)
                if type_key not in typed_seen:
                    typed_seen.add(type_key)
                    self._objects_of_type.setdefault(
                        instance.type, []
                    ).append(instance.object_id)
            if saw_object:
                with_any_object.append(segment_id)
            for relationship in segment.relationships:
                rel_postings = by_relationship.setdefault(
                    relationship.name, []
                )
                if not rel_postings or rel_postings[-1] != segment_id:
                    rel_postings.append(segment_id)
            for name, fact in segment.attributes.items():
                by_segment_attr.setdefault((name, fact.value), []).append(
                    segment_id
                )
                by_attr_name.setdefault(name, []).append(segment_id)
        for key, values in by_object.items():
            self._by_object[key] = self._by_object.get(key, _EMPTY) + tuple(
                values
            )
        for key, values in by_type.items():
            self._by_type[key] = self._by_type.get(key, _EMPTY) + tuple(
                values
            )
        for key, values in by_relationship.items():
            self._by_relationship[key] = self._by_relationship.get(
                key, _EMPTY
            ) + tuple(values)
        for attr_key, values in by_segment_attr.items():
            self._by_segment_attr[attr_key] = self._by_segment_attr.get(
                attr_key, _EMPTY
            ) + tuple(values)
        for key, values in by_attr_name.items():
            self._by_attr_name[key] = self._by_attr_name.get(
                key, _EMPTY
            ) + tuple(values)
        self._with_any_object = self._with_any_object + tuple(
            with_any_object
        )
        self._with_signature = self._with_signature + tuple(with_signature)
        if self._profile_keys is None:
            self._profile_keys = {}
        profiles = list(self._segment_profiles)
        for segment in segments:
            content = _content_key(segment)
            profile = self._profile_keys.get(content)
            if profile is None:
                profile = self.n_profiles
                self._profile_keys[content] = profile
                self.n_profiles += 1
            profiles.append(profile)
        self._segment_profiles = tuple(profiles)
        self.n_segments += len(segments)
        return self.n_segments

    # -- postings -----------------------------------------------------------
    def segments_with_object(self, object_id: str) -> Tuple[int, ...]:
        """Ids of segments in which the object appears."""
        return self._by_object.get(object_id, _EMPTY)

    def segments_with_type(self, type_name: str) -> Tuple[int, ...]:
        """Ids of segments containing at least one object of the type."""
        return self._by_type.get(type_name, _EMPTY)

    def segments_with_relationship(self, name: str) -> Tuple[int, ...]:
        """Ids of segments containing a relationship with the name."""
        return self._by_relationship.get(name, _EMPTY)

    def segments_with_attribute(
        self, name: str, value: AttrValue
    ) -> Tuple[int, ...]:
        """Ids of segments whose segment attribute has exactly the value."""
        return self._by_segment_attr.get((name, value), _EMPTY)

    def segments_with_attribute_name(self, name: str) -> Tuple[int, ...]:
        """Ids of segments where the segment attribute is defined at all."""
        return self._by_attr_name.get(name, _EMPTY)

    def segments_with_any_object(self) -> Tuple[int, ...]:
        """Ids of segments containing at least one object."""
        return self._with_any_object

    def segments_with_signature(self) -> Tuple[int, ...]:
        """Ids of segments carrying a content signature.

        The support set of ``looks_like`` atoms: a segment without a
        signature scores the atom's baseline (0), exactly like the
        representative empty segment.
        """
        return self._with_signature

    # -- content profiles ----------------------------------------------------
    def segment_profiles(self) -> Tuple[int, ...]:
        """Per-segment content profile ids, in segment order (0-indexed).

        Segments with equal profiles have equal meta-data up to
        reordering, hence equal scores for every atom, binding and pool.
        """
        return self._segment_profiles

    # -- introspection --------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Size summary of the index, for ``shard info``, the planner and
        diagnostics.

        ``postings`` maps each postings family to its key count, the total
        number of posted segment ids, and a ``lengths`` summary of the
        posting-list length distribution (mean / p50 / p90 / max, all 0 for
        an empty family) — the selectivity raw material of
        :mod:`repro.core.planner`.  ``pools`` summarises the quantities an
        ``∃`` iterates over: the object universe size and the
        any-object-present segment count.  ``profile_dedup`` is the
        fraction of segments collapsed away by content-profile sharing
        (0.0 when every segment is unique).
        """
        families = {
            "object": self._by_object,
            "type": self._by_type,
            "relationship": self._by_relationship,
            "segment_attr": self._by_segment_attr,
            "attr_name": self._by_attr_name,
        }
        postings = {
            name: {
                "keys": len(table),
                "entries": sum(len(ids) for ids in table.values()),
                "lengths": _length_summary(
                    [len(ids) for ids in table.values()]
                ),
            }
            for name, table in families.items()
        }
        dedup = (
            1.0 - self.n_profiles / self.n_segments
            if self.n_segments
            else 0.0
        )
        return {
            "n_segments": self.n_segments,
            "n_profiles": self.n_profiles,
            "profile_dedup": dedup,
            "postings": postings,
            "pools": {
                "universe": len(self._by_object),
                "types": len(self._objects_of_type),
                "any_object_segments": len(self._with_any_object),
                "signature_segments": len(self._with_signature),
            },
        }

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe document of every postings structure.

        The store persists this next to the metadata it was derived from
        so a warm start can skip index construction; round-trip safe:
        ``from_dict(to_dict()).to_dict() == to_dict()``.
        """
        return {
            "n_segments": self.n_segments,
            "by_object": {
                key: list(ids) for key, ids in self._by_object.items()
            },
            "by_type": {key: list(ids) for key, ids in self._by_type.items()},
            "by_relationship": {
                key: list(ids) for key, ids in self._by_relationship.items()
            },
            # Tuple keys are not JSON keys; entries are (name, value, ids)
            # triples in a deterministic order.
            "by_segment_attr": sorted(
                (
                    [name, value, list(ids)]
                    for (name, value), ids in self._by_segment_attr.items()
                ),
                key=repr,
            ),
            "by_attr_name": {
                key: list(ids) for key, ids in self._by_attr_name.items()
            },
            "with_any_object": list(self._with_any_object),
            "with_signature": list(self._with_signature),
            "objects_of_type": {
                key: list(ids) for key, ids in self._objects_of_type.items()
            },
            "segment_profiles": list(self._segment_profiles),
            "n_profiles": self.n_profiles,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "MetadataIndex":
        """Rebuild an index from :meth:`to_dict` output (untrusted).

        Structural junk raises a typed :class:`~repro.errors.ModelError`;
        the caller (the store's load path) treats that as corruption and
        rebuilds from the surviving metadata instead.
        """
        try:
            index = cls.__new__(cls)
            index.n_segments = int(document["n_segments"])
            index._by_object = {
                str(key): tuple(int(i) for i in ids)
                for key, ids in document["by_object"].items()
            }
            index._by_type = {
                str(key): tuple(int(i) for i in ids)
                for key, ids in document["by_type"].items()
            }
            index._by_relationship = {
                str(key): tuple(int(i) for i in ids)
                for key, ids in document["by_relationship"].items()
            }
            index._by_segment_attr = {}
            for name, value, ids in document["by_segment_attr"]:
                index._by_segment_attr[(str(name), value)] = tuple(
                    int(i) for i in ids
                )
            index._by_attr_name = {
                str(key): tuple(int(i) for i in ids)
                for key, ids in document["by_attr_name"].items()
            }
            index._with_any_object = tuple(
                int(i) for i in document["with_any_object"]
            )
            # Documents written before the signature backend existed
            # describe corpora with no signatures, so the empty default
            # is exact for them.
            index._with_signature = tuple(
                int(i) for i in document.get("with_signature", [])
            )
            index._objects_of_type = {
                str(key): [str(i) for i in ids]
                for key, ids in document["objects_of_type"].items()
            }
            index._segment_profiles = tuple(
                int(p) for p in document["segment_profiles"]
            )
            index.n_profiles = int(document["n_profiles"])
            index._profile_keys = None
        except ModelError:
            raise
        except Exception as error:
            raise ModelError(
                f"malformed metadata-index payload: {error!r}"
            ) from error
        if len(index._segment_profiles) != index.n_segments:
            raise ModelError(
                f"metadata-index payload carries {len(index._segment_profiles)} "
                f"segment profiles for {index.n_segments} segments"
            )
        return index

    # -- object universe ------------------------------------------------------
    def all_object_ids(self) -> List[str]:
        """Every universal object id appearing in the sequence."""
        return list(self._by_object)

    def object_ids_of_type(self, type_name: str) -> List[str]:
        """Object ids having the given type in some segment."""
        return list(self._objects_of_type.get(type_name, []))
