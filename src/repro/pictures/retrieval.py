"""The picture-retrieval system: similarity tables for atomic predicates.

This reproduces the role of the paper's underlying picture retrieval
system ([27, 2]): given an atomic (non-temporal) HTL subformula and a
sequence of segments, produce the similarity table that the video
retrieval algorithms consume — one row per relevant evaluation of the free
object variables (plus range columns for free attribute variables), with
the similarity list of the atom over the segment sequence.

Attribute variables are handled per paper §3.3: predicates over an
attribute variable ``y`` are restricted to ``y OP q`` / ``q OP y`` with an
attribute-variable-free ``q``; the satisfying value space is partitioned
into elementary ranges at the values ``q`` takes across the sequence, and
within an elementary range the atom's similarity is constant, so one
representative value per range suffices.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.ranges import FULL, Range, interval
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.core.tables import SimilarityTable, TableRow
from repro.errors import HTLTypeError, UnsupportedFormulaError
from repro.htl import ast
from repro.htl.classify import is_non_temporal
from repro.htl.variables import (
    free_attr_vars,
    free_object_vars,
    term_attr_vars,
)
from repro.model.metadata import SegmentMetadata
from repro.pictures.index import MetadataIndex
from repro.pictures.scoring import eval_term, max_similarity, score


class PictureRetrievalSystem:
    """Atom evaluation over one segment sequence, with indices."""

    def __init__(self, segments: Sequence[SegmentMetadata]):
        self.segments = list(segments)
        self.index = MetadataIndex(self.segments)
        self._universe = self.index.all_object_ids()

    @property
    def universe(self) -> List[str]:
        """Object ids appearing anywhere in the sequence."""
        return list(self._universe)

    # ------------------------------------------------------------------
    def similarity_table(
        self,
        atom: ast.Formula,
        universe: Optional[Sequence[str]] = None,
        prune: bool = False,
    ) -> SimilarityTable:
        """The similarity table of a non-temporal formula.

        ``universe`` is the pool object variables (free and inner-∃ alike)
        range over; it defaults to the sequence's objects.  With
        ``prune=True``, bindings whose variables never co-occur with the
        atom's object conditions are skipped — the "relevant evaluations"
        reading of the paper; the default enumerates every binding, which
        is what the definitional semantics prescribe under partial
        matching.
        """
        if not is_non_temporal(atom):
            raise UnsupportedFormulaError(
                "the picture system evaluates non-temporal formulas only"
            )
        _check_attr_var_usage(atom)
        pool = list(universe) if universe is not None else list(self._universe)
        object_vars = sorted(free_object_vars(atom))
        attr_vars = sorted(free_attr_vars(atom))
        maximum = max_similarity(atom)

        candidate_pool = (
            self._pruned_candidates(atom, object_vars, pool)
            if prune
            else {name: pool for name in object_vars}
        )

        rows: List[TableRow] = []
        bindings = itertools.product(
            *(candidate_pool[name] for name in object_vars)
        )
        for values in bindings:
            binding = dict(zip(object_vars, values))
            if attr_vars:
                rows.extend(
                    self._attr_var_rows(
                        atom, binding, tuple(values), attr_vars, pool, maximum
                    )
                )
            else:
                sim = self._score_list(atom, binding, pool, maximum)
                # Open tables keep only relevant (non-empty) evaluations;
                # a closed atom always keeps its single row so downstream
                # joins see the evaluation even at similarity zero.
                if sim or not object_vars:
                    rows.append(TableRow(tuple(values), (), sim))
        return SimilarityTable(object_vars, attr_vars, rows, maximum)

    def similarity_list(
        self, atom: ast.Formula, universe: Optional[Sequence[str]] = None
    ) -> SimilarityList:
        """Similarity list of a closed atom (no free variables)."""
        table = self.similarity_table(atom, universe=universe)
        return table.closed_list()

    # ------------------------------------------------------------------
    def _score_list(
        self,
        atom: ast.Formula,
        binding: Dict[str, Union[str, int, float]],
        pool: Sequence[str],
        maximum: float,
    ) -> SimilarityList:
        values: Dict[int, float] = {}
        for segment_id, segment in enumerate(self.segments, start=1):
            actual = score(atom, segment, binding, pool)
            if actual > SIM_EPS:
                values[segment_id] = actual
        return SimilarityList.from_segment_values(values, maximum)

    def _attr_var_rows(
        self,
        atom: ast.Formula,
        binding: Dict[str, Union[str, int, float]],
        objects: Tuple[str, ...],
        attr_vars: List[str],
        pool: Sequence[str],
        maximum: float,
    ) -> List[TableRow]:
        per_var_ranges = [
            _elementary_ranges(self._boundary_values(atom, name, binding))
            for name in attr_vars
        ]
        rows: List[TableRow] = []
        for box in itertools.product(*per_var_ranges):
            extended = dict(binding)
            skip = False
            for name, value_range in zip(attr_vars, box):
                sample = _range_sample(value_range)
                if sample is None:
                    skip = True
                    break
                extended[name] = sample
            if skip:
                continue
            sim = self._score_list(atom, extended, pool, maximum)
            if sim:
                rows.append(TableRow(objects, box, sim))
        return rows

    def _boundary_values(
        self,
        atom: ast.Formula,
        attr_var: str,
        binding: Dict[str, Union[str, int, float]],
    ) -> "Tuple[Set[int], Set[Union[str, float]]]":
        """Values the variable is compared against, across the sequence."""
        int_bounds: Set[int] = set()
        exact_bounds: Set[Union[str, float]] = set()
        for node in atom.walk():
            if not isinstance(node, ast.Compare):
                continue
            other = _compared_term(node, attr_var)
            if other is None:
                continue
            for segment in self.segments:
                evaluated = eval_term(other, segment, binding)
                if evaluated is None:
                    continue
                value = evaluated[0]
                if isinstance(value, bool):
                    continue
                if isinstance(value, int):
                    int_bounds.add(value)
                else:
                    exact_bounds.add(value)
        return int_bounds, exact_bounds

    def _pruned_candidates(
        self,
        atom: ast.Formula,
        object_vars: List[str],
        pool: Sequence[str],
    ) -> Dict[str, List[str]]:
        """Heuristic candidate narrowing from top-level type constraints."""
        candidates = {name: list(pool) for name in object_vars}
        for node in atom.walk():
            if (
                isinstance(node, ast.Compare)
                and node.op == "="
                and isinstance(node.left, ast.AttrFunc)
                and node.left.name == "type"
                and len(node.left.args) == 1
                and isinstance(node.left.args[0], ast.ObjectVar)
                and isinstance(node.right, ast.Const)
                and isinstance(node.right.value, str)
            ):
                name = node.left.args[0].name
                if name in candidates:
                    typed = set(self.index.object_ids_of_type(node.right.value))
                    candidates[name] = [
                        object_id
                        for object_id in candidates[name]
                        if object_id in typed
                    ]
        return candidates


# ---------------------------------------------------------------------------
# attribute-variable helpers
# ---------------------------------------------------------------------------
def _compared_term(node: ast.Compare, attr_var: str) -> Optional[ast.Term]:
    """The attr-var-free side of a comparison against ``attr_var``."""
    left_is_var = isinstance(node.left, ast.AttrVar) and node.left.name == attr_var
    right_is_var = (
        isinstance(node.right, ast.AttrVar) and node.right.name == attr_var
    )
    if left_is_var and not right_is_var:
        return node.right
    if right_is_var and not left_is_var:
        return node.left
    return None


def _check_attr_var_usage(atom: ast.Formula) -> None:
    """Enforce the paper's restriction on attribute-variable predicates."""
    for node in atom.walk():
        if isinstance(node, ast.Compare):
            left_vars = term_attr_vars(node.left)
            right_vars = term_attr_vars(node.right)
            if left_vars and right_vars:
                raise HTLTypeError(
                    "attribute variables may only be compared with "
                    f"attribute-variable-free expressions: {node!r}"
                )
            for side, vars_in_side in (
                (node.left, left_vars),
                (node.right, right_vars),
            ):
                if vars_in_side and not isinstance(side, ast.AttrVar):
                    raise HTLTypeError(
                        "attribute variables may appear only bare on one "
                        f"side of a comparison: {node!r}"
                    )
        elif isinstance(node, ast.Rel):
            for arg in node.args:
                if term_attr_vars(arg):
                    raise HTLTypeError(
                        "attribute variables may not appear in relationship "
                        f"arguments: {node!r}"
                    )
        elif isinstance(node, ast.Present):
            continue


def _elementary_ranges(
    bounds: "Tuple[Set[int], Set[Union[str, float]]]",
) -> List[Range]:
    """Partition the value space at the boundary values.

    An integer-typed variable splits into singletons at each bound and the
    open blocks between; a non-integer-typed variable splits into one exact
    range per mentioned value plus the complement ("any other value", whose
    satisfaction pattern is uniform because only equality predicates apply).
    Mixing value types on one variable is rejected — an attribute variable
    has one type, as in the paper.
    """
    int_bounds, exact_bounds = bounds
    if int_bounds and exact_bounds:
        raise HTLTypeError(
            "an attribute variable is compared against both integer and "
            f"non-integer values ({sorted(int_bounds)} vs "
            f"{sorted(exact_bounds, key=repr)})"
        )
    if exact_bounds:
        ranges: List[Range] = [
            Range(exact=value) for value in sorted(exact_bounds, key=repr)
        ]
        ranges.append(Range(excluded=frozenset(exact_bounds)))
        return ranges
    ordered = sorted(int_bounds)
    if not ordered:
        return [FULL]
    ranges = [interval(None, ordered[0] - 1)]
    for position, bound in enumerate(ordered):
        ranges.append(interval(bound, bound))
        next_bound = (
            ordered[position + 1] if position + 1 < len(ordered) else None
        )
        if next_bound is None:
            ranges.append(interval(bound + 1, None))
        elif bound + 1 <= next_bound - 1:
            ranges.append(interval(bound + 1, next_bound - 1))
    return ranges


def _range_sample(value_range: Range) -> Optional[Union[str, int, float]]:
    if value_range.is_exact():
        return value_range.exact  # type: ignore[return-value]
    return value_range.sample()
