"""The picture-retrieval system: similarity tables for atomic predicates.

This reproduces the role of the paper's underlying picture retrieval
system ([27, 2]): given an atomic (non-temporal) HTL subformula and a
sequence of segments, produce the similarity table that the video
retrieval algorithms consume — one row per relevant evaluation of the free
object variables (plus range columns for free attribute variables), with
the similarity list of the atom over the segment sequence.

Attribute variables are handled per paper §3.3: predicates over an
attribute variable ``y`` are restricted to ``y OP q`` / ``q OP y`` with an
attribute-variable-free ``q``; the satisfying value space is partitioned
into elementary ranges at the values ``q`` takes across the sequence, and
within an elementary range the atom's similarity is constant, so one
representative value per range suffices.

Two evaluation paths produce every table (DESIGN.md §7):

* the **naive scan** walks every (binding × segment) pair through the
  recursive scorer — the definitional oracle, kept verbatim;
* the **index-driven path** (default) asks the support-set analysis of
  :mod:`repro.pictures.support` which segments can score differently from
  the binding's *baseline* (its score on an empty segment), sweeps only
  those — all bindings batched per segment, memoizing on the relevant
  meta-data fingerprint — and emits the baseline over the complement as
  interval runs directly in compressed form.

The two are list-for-list identical (property-tested); ``use_index``
selects per system or per call, and ``EngineConfig(naive_atoms=True)``
forces the naive path engine-wide.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core import instrument, resilience, trace
from repro.core.ranges import FULL, Range, interval
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.core.tables import SimilarityTable, TableRow
from repro.errors import (
    BudgetExceededError,
    HTLTypeError,
    UnsupportedFormulaError,
)
from repro.htl import ast
from repro.htl.classify import is_non_temporal
from repro.htl.pretty import pretty
from repro.htl.variables import (
    free_attr_vars,
    free_object_vars,
    term_attr_vars,
)
from repro.model.metadata import SegmentMetadata
from repro.pictures.index import MetadataIndex
from repro.pictures.scoring import eval_term, max_similarity, score
from repro.pictures.support import AtomSupport, SupportAnalyzer

#: The representative empty segment baselines are scored on.
_EMPTY_SEGMENT = SegmentMetadata()


def _clip_atom(atom: ast.Formula, limit: int = 60) -> str:
    """A short rendering of an atom for span names."""
    text = pretty(atom)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass
class PictureStats:
    """Work counters of the index-driven path (reset with :meth:`reset`)."""

    tables: int = 0
    bindings: int = 0
    #: score() invocations against stored segments (the dominant cost).
    segments_scored: int = 0
    #: candidate (binding, segment) pairs resolved from the fingerprint memo.
    fingerprint_hits: int = 0
    #: total candidate-set sizes over all bounded bindings.
    candidate_segments: int = 0
    #: bindings whose support analysis could not bound the candidates.
    unbounded_bindings: int = 0
    #: bindings whose near-universal candidate set the density cutoff
    #: demoted to a direct sweep (a subset of ``unbounded_bindings``).
    dense_bindings: int = 0
    #: baseline scores computed (one per bounded binding).
    baseline_scores: int = 0

    def reset(self) -> None:
        self.tables = 0
        self.bindings = 0
        self.segments_scored = 0
        self.fingerprint_hits = 0
        self.candidate_segments = 0
        self.unbounded_bindings = 0
        self.dense_bindings = 0
        self.baseline_scores = 0


@dataclass
class _Job:
    """One similarity list under construction during the batched sweep."""

    objects: Tuple[str, ...]
    box: tuple
    binding: Dict[str, Union[str, int, float]]
    support: AtomSupport
    baseline: float = 0.0
    memo: Dict[tuple, float] = field(default_factory=dict)
    #: score per segment content profile — sound for every job, plan or
    #: not, since the score is a pure function of the segment's content
    #: given the binding and pool.
    profile_memo: Dict[int, float] = field(default_factory=dict)
    scored: List[Tuple[int, float]] = field(default_factory=list)


class PictureRetrievalSystem:
    """Atom evaluation over one segment sequence, with indices."""

    def __init__(
        self,
        segments: Sequence[SegmentMetadata],
        use_index: bool = True,
        index: Optional[MetadataIndex] = None,
    ):
        self.segments = list(segments)
        if index is not None and index.n_segments != len(self.segments):
            from repro.errors import MetadataError

            raise MetadataError(
                f"prebuilt index covers {index.n_segments} segments, "
                f"sequence has {len(self.segments)}"
            )
        # A prebuilt index (the store's warm-start path) must have been
        # derived from exactly these segments — the store guarantees that
        # by verifying both artifacts against one snapshot manifest.
        self.index = index if index is not None else MetadataIndex(self.segments)
        self.use_index = use_index
        self.stats = PictureStats()
        #: When set to a list, the indexed sweep appends every visited
        #: (objects, segment_id) pair — the support-soundness tests check
        #: the pairs stay inside the analysis' candidate sets.
        self.trace_scored: Optional[List[Tuple[Tuple[str, ...], int]]] = None
        self._analyzer = SupportAnalyzer(self.index)
        self._universe = self.index.all_object_ids()

    @property
    def universe(self) -> List[str]:
        """Object ids appearing anywhere in the sequence."""
        return list(self._universe)

    def append_segments(self, segments: Sequence[SegmentMetadata]) -> int:
        """Extend the system over segments appended to its sequence.

        The metadata index is maintained in place
        (:meth:`~repro.pictures.index.MetadataIndex.append_segments`); the
        support analyzer is rebuilt because its pool-postings memo caches
        intersections over the old postings, and the ∃-pool universe is
        refreshed.  Returns the new sequence length.
        """
        if not segments:
            return len(self.segments)
        self.segments.extend(segments)
        self.index.append_segments(segments)
        self._analyzer = SupportAnalyzer(self.index)
        self._universe = self.index.all_object_ids()
        instrument.count(instrument.INDEX_APPENDED)
        return len(self.segments)

    def atom_support(
        self,
        atom: ast.Formula,
        binding: Dict[str, Union[str, int, float]],
        universe: Optional[Sequence[str]] = None,
        charge: bool = True,
    ) -> AtomSupport:
        """The support analysis of one (atom, binding) pair.

        ``universe`` is the ∃-pool the analysis expands quantified
        probes over; it must match the pool the table was (or will be)
        built with, and defaults to the sequence's objects.

        ``charge=False`` exempts the call from budget step accounting —
        the planner's cost probes use it so planning a query never
        changes how many steps evaluating it is charged.
        """
        pool = list(universe) if universe is not None else self._universe
        return self._analyzer.atom_support(atom, binding, pool, charge=charge)

    # ------------------------------------------------------------------
    def similarity_table(
        self,
        atom: ast.Formula,
        universe: Optional[Sequence[str]] = None,
        prune: bool = False,
        use_index: Optional[bool] = None,
    ) -> SimilarityTable:
        """The similarity table of a non-temporal formula.

        ``universe`` is the pool object variables (free and inner-∃ alike)
        range over; it defaults to the sequence's objects.  With
        ``prune=True``, bindings whose variables never co-occur with the
        atom's object conditions are skipped — the "relevant evaluations"
        reading of the paper; the default enumerates every binding, which
        is what the definitional semantics prescribe under partial
        matching.  ``use_index`` overrides the system-wide path selection
        for this call (``None`` keeps the system default).

        Every table build is one ``atom-scoring`` stage block, and — when
        a trace recorder is active — one ``atom-sweep`` span annotated
        with the path taken (indexed / naive / naive-fallback) and the
        sweep's work-counter deltas (DESIGN.md §10).
        """
        with trace.staged_span(
            trace.ATOM_SCORING,
            trace.KIND_ATOM_SWEEP,
            _clip_atom(atom),
        ) as span:
            if span is None:
                return self._similarity_table(atom, universe, prune, use_index)
            before = (
                self.stats.bindings,
                self.stats.segments_scored,
                self.stats.fingerprint_hits,
            )
            table = self._similarity_table(atom, universe, prune, use_index)
            span.attrs["rows"] = len(table.rows)
            span.attrs["bindings"] = self.stats.bindings - before[0]
            span.attrs["segments-scored"] = (
                self.stats.segments_scored - before[1]
            )
            span.attrs["fingerprint-hits"] = (
                self.stats.fingerprint_hits - before[2]
            )
            return table

    def _similarity_table(
        self,
        atom: ast.Formula,
        universe: Optional[Sequence[str]],
        prune: bool,
        use_index: Optional[bool],
    ) -> SimilarityTable:
        if not is_non_temporal(atom):
            raise UnsupportedFormulaError(
                "the picture system evaluates non-temporal formulas only"
            )
        _check_attr_var_usage(atom)
        indexed = self.use_index if use_index is None else use_index
        pool = list(universe) if universe is not None else list(self._universe)
        object_vars = sorted(free_object_vars(atom))
        attr_vars = sorted(free_attr_vars(atom))
        maximum = max_similarity(atom)

        candidate_pool = (
            self._pruned_candidates(atom, object_vars, pool)
            if prune
            else {name: pool for name in object_vars}
        )
        bindings = itertools.product(
            *(candidate_pool[name] for name in object_vars)
        )

        if indexed:
            # Degraded fallback (DESIGN.md §8): under an active resilience
            # context with atom_fallback, a failing index-driven build is
            # redone with the naive oracle scorer for this call, and the
            # "atom-index" breaker takes the indexed path out of rotation
            # after repeated failures.  Budget overruns always propagate —
            # a blown deadline must abort, not degrade.
            context = resilience.current()
            if context is None or not context.policy.atom_fallback:
                trace.annotate(path="indexed")
                rows = self._indexed_rows(
                    atom, bindings, object_vars, attr_vars, pool, maximum
                )
                return SimilarityTable(object_vars, attr_vars, rows, maximum)
            breaker = context.breaker("atom-index")
            if breaker.allow():
                try:
                    rows = self._indexed_rows(
                        atom, bindings, object_vars, attr_vars, pool, maximum
                    )
                    table = SimilarityTable(
                        object_vars, attr_vars, rows, maximum
                    )
                    breaker.record_success()
                    trace.annotate(path="indexed")
                    return table
                except BudgetExceededError:
                    raise
                except Exception as exc:
                    breaker.record_failure()
                    instrument.count(instrument.ATOM_FALLBACK)
                    trace.event(
                        instrument.ATOM_FALLBACK,
                        f"indexed sweep failed with {type(exc).__name__}; "
                        "redoing with the naive oracle scorer",
                    )
                    trace.annotate(path="naive-fallback")
            else:
                instrument.count(instrument.ATOM_BREAKER_OPEN)
                trace.event(
                    instrument.ATOM_BREAKER_OPEN,
                    "atom-index breaker refused the indexed path",
                )
                trace.annotate(path="naive-fallback")
            # The bindings iterator may be partially consumed; rebuild it.
            bindings = itertools.product(
                *(candidate_pool[name] for name in object_vars)
            )
        else:
            trace.annotate(path="naive")

        rows: List[TableRow] = []
        for values in bindings:
            binding = dict(zip(object_vars, values))
            if attr_vars:
                rows.extend(
                    self._attr_var_rows(
                        atom, binding, tuple(values), attr_vars, pool, maximum
                    )
                )
            else:
                sim = self._score_list(atom, binding, pool, maximum)
                # Open tables keep only relevant (non-empty) evaluations;
                # a closed atom always keeps its single row so downstream
                # joins see the evaluation even at similarity zero.
                if sim or not object_vars:
                    rows.append(TableRow(tuple(values), (), sim))
        return SimilarityTable(object_vars, attr_vars, rows, maximum)

    def similarity_list(
        self,
        atom: ast.Formula,
        universe: Optional[Sequence[str]] = None,
        use_index: Optional[bool] = None,
    ) -> SimilarityList:
        """Similarity list of a closed atom (no free variables)."""
        table = self.similarity_table(
            atom, universe=universe, use_index=use_index
        )
        return table.closed_list()

    # ------------------------------------------------------------------
    # index-driven path
    # ------------------------------------------------------------------
    def _indexed_rows(
        self,
        atom: ast.Formula,
        bindings: Iterator[Tuple[str, ...]],
        object_vars: List[str],
        attr_vars: List[str],
        pool: Sequence[str],
        maximum: float,
    ) -> List[TableRow]:
        """Build every row of one table in a single batched sweep."""
        self.stats.tables += 1
        jobs: List[_Job] = []
        for values in bindings:
            binding = dict(zip(object_vars, values))
            if attr_vars:
                jobs.extend(
                    self._attr_var_jobs(
                        atom, binding, tuple(values), attr_vars, pool
                    )
                )
            else:
                jobs.append(
                    self._make_job(atom, tuple(values), (), binding, pool)
                )
        self._sweep(atom, jobs, pool)
        rows: List[TableRow] = []
        for job in jobs:
            sim = resilience.fault_value(
                resilience.SITE_ATOM_SCORE, self._emit(job, maximum)
            )
            if attr_vars:
                keep = bool(sim)
            else:
                keep = bool(sim) or not object_vars
            if keep:
                rows.append(TableRow(job.objects, job.box, sim))
        return rows

    def _make_job(
        self,
        atom: ast.Formula,
        objects: Tuple[str, ...],
        box: tuple,
        binding: Dict[str, Union[str, int, float]],
        pool: Sequence[str],
    ) -> _Job:
        self.stats.bindings += 1
        resilience.fault(resilience.SITE_INDEX_LOOKUP)
        support = self._analyzer.atom_support(atom, binding, pool)
        if support.candidates is None:
            self.stats.unbounded_bindings += 1
            if support.dense:
                self.stats.dense_bindings += 1
        else:
            self.stats.candidate_segments += len(support.candidates)
        return _Job(objects, box, binding, support)

    def _attr_var_jobs(
        self,
        atom: ast.Formula,
        binding: Dict[str, Union[str, int, float]],
        objects: Tuple[str, ...],
        attr_vars: List[str],
        pool: Sequence[str],
    ) -> List[_Job]:
        per_var_ranges = [
            _elementary_ranges(
                self._boundary_values(atom, name, binding, indexed=True)
            )
            for name in attr_vars
        ]
        jobs: List[_Job] = []
        for box in itertools.product(*per_var_ranges):
            extended = dict(binding)
            skip = False
            for name, value_range in zip(attr_vars, box):
                sample = _range_sample(value_range)
                if sample is None:
                    skip = True
                    break
                extended[name] = sample
            if skip:
                continue
            jobs.append(self._make_job(atom, objects, box, extended, pool))
        return jobs

    def _sweep(
        self, atom: ast.Formula, jobs: List[_Job], pool: Sequence[str]
    ) -> None:
        """Score all jobs in one ascending pass over candidate segments.

        Each segment is visited once for *all* bindings that list it as a
        candidate; per job, segments with an identical relevant-metadata
        fingerprint are scored once (run-compressed scoring).
        """
        n_segments = len(self.segments)
        # Jobs with an unbounded support — no candidate set, or one the
        # density cutoff demoted — visit every segment; materialising
        # their (near-)universal postings into the per-segment job lists
        # would cost more than it saves, so they sweep directly.
        sweep_all: List[_Job] = []
        by_segment: Dict[int, List[_Job]] = {}
        for job in jobs:
            candidates = job.support.candidates
            if candidates is None:
                sweep_all.append(job)
                continue
            for segment_id in candidates:
                by_segment.setdefault(segment_id, []).append(job)
            # Baseline fills every off-candidate gap; scored on the
            # empty representative segment with ∃-pools narrowed.
            resilience.fault(resilience.SITE_ATOM_SCORE)
            job.baseline = score(
                atom, _EMPTY_SEGMENT, job.binding, pool, narrow=True
            )
            self.stats.baseline_scores += 1
        trace = self.trace_scored
        profiles = self.index.segment_profiles()
        segments = self.segments
        budget = resilience.current_budget()
        scored_count = 0
        hit_count = 0
        pending = 0
        segment_ids: Sequence[int] = (
            range(1, n_segments + 1) if sweep_all else sorted(by_segment)
        )
        no_jobs: List[_Job] = []
        for segment_id in segment_ids:
            segment = segments[segment_id - 1]
            profile = profiles[segment_id - 1]
            if budget is not None:
                # Charge in blocks: one budget call per 256 segments keeps
                # step accounting exact at a fraction of the per-iteration
                # cost (the <5% gate in bench_chaos_recovery.py).
                pending += 1
                if pending >= 256:
                    budget.charge(pending, site="atom-scoring")
                    pending = 0
            for job in itertools.chain(
                sweep_all, by_segment.get(segment_id, no_jobs)
            ):
                # First level: segments with identical content (profile)
                # share a score outright — no probing at all.
                actual = job.profile_memo.get(profile)
                if actual is None:
                    plan = job.support.plan
                    if plan is None:
                        resilience.fault(resilience.SITE_ATOM_SCORE)
                        actual = score(
                            atom, segment, job.binding, pool, narrow=True
                        )
                        scored_count += 1
                    else:
                        # Second level: segments that agree on the
                        # atom's relevant facts share a score too.
                        fingerprint = plan.fingerprint(segment)
                        actual = job.memo.get(fingerprint)
                        if actual is None:
                            resilience.fault(resilience.SITE_ATOM_SCORE)
                            actual = score(
                                atom, segment, job.binding, pool, narrow=True
                            )
                            job.memo[fingerprint] = actual
                            scored_count += 1
                        else:
                            hit_count += 1
                    job.profile_memo[profile] = actual
                else:
                    hit_count += 1
                if trace is not None:
                    trace.append((job.objects, segment_id))
                job.scored.append((segment_id, actual))
        if budget is not None and pending:
            budget.charge(pending, site="atom-scoring")
        self.stats.segments_scored += scored_count
        self.stats.fingerprint_hits += hit_count

    def _emit(self, job: _Job, maximum: float) -> SimilarityList:
        """Scored values + baseline gap runs, in compressed form."""
        n_segments = len(self.segments)
        baseline = job.baseline
        pieces: List[Tuple[int, int, float]] = []
        append = pieces.append
        if baseline <= SIM_EPS:
            # Zero baseline: the gaps contribute nothing — emit the
            # scored segments only.
            for segment_id, actual in job.scored:
                append((segment_id, segment_id, actual))
            return SimilarityList.from_sorted_pieces(pieces, maximum)
        previous = 0
        for segment_id, actual in job.scored:
            if segment_id > previous + 1:
                append((previous + 1, segment_id - 1, baseline))
            append((segment_id, segment_id, actual))
            previous = segment_id
        if previous < n_segments:
            append((previous + 1, n_segments, baseline))
        return SimilarityList.from_sorted_pieces(pieces, maximum)

    # ------------------------------------------------------------------
    # naive full-scan path (the oracle)
    # ------------------------------------------------------------------
    def _score_list(
        self,
        atom: ast.Formula,
        binding: Dict[str, Union[str, int, float]],
        pool: Sequence[str],
        maximum: float,
    ) -> SimilarityList:
        # Budget accounting mirrors the indexed path — one step per
        # binding (the analysis-shaped cost) plus block charges per 256
        # segments — so a step budget sees comparable consumption
        # whichever strategy the planner (or config) picked.
        budget = resilience.current_budget()
        if budget is not None:
            budget.charge(1, site="atom-scoring")
        pending = 0
        values: Dict[int, float] = {}
        for segment_id, segment in enumerate(self.segments, start=1):
            if budget is not None:
                pending += 1
                if pending >= 256:
                    budget.charge(pending, site="atom-scoring")
                    pending = 0
            actual = score(atom, segment, binding, pool)
            if actual > SIM_EPS:
                values[segment_id] = actual
        if budget is not None and pending:
            budget.charge(pending, site="atom-scoring")
        return SimilarityList.from_segment_values(values, maximum)

    def _attr_var_rows(
        self,
        atom: ast.Formula,
        binding: Dict[str, Union[str, int, float]],
        objects: Tuple[str, ...],
        attr_vars: List[str],
        pool: Sequence[str],
        maximum: float,
    ) -> List[TableRow]:
        per_var_ranges = [
            _elementary_ranges(self._boundary_values(atom, name, binding))
            for name in attr_vars
        ]
        rows: List[TableRow] = []
        for box in itertools.product(*per_var_ranges):
            extended = dict(binding)
            skip = False
            for name, value_range in zip(attr_vars, box):
                sample = _range_sample(value_range)
                if sample is None:
                    skip = True
                    break
                extended[name] = sample
            if skip:
                continue
            sim = self._score_list(atom, extended, pool, maximum)
            if sim:
                rows.append(TableRow(objects, box, sim))
        return rows

    def _boundary_values(
        self,
        atom: ast.Formula,
        attr_var: str,
        binding: Dict[str, Union[str, int, float]],
        indexed: bool = False,
    ) -> "Tuple[Set[int], Set[Union[str, float]]]":
        """Values the variable is compared against, across the sequence.

        In indexed mode only the segments where the compared term can be
        defined are scanned (off its support the term evaluates to None
        and contributes no boundary, so the value set is unchanged).
        """
        int_bounds: Set[int] = set()
        exact_bounds: Set[Union[str, float]] = set()
        for node in atom.walk():
            if not isinstance(node, ast.Compare):
                continue
            other = _compared_term(node, attr_var)
            if other is None:
                continue
            if indexed:
                candidates = self._analyzer.term_candidates(other, binding)
                segments: Sequence[SegmentMetadata] = (
                    self.segments
                    if candidates is None
                    else [self.segments[i - 1] for i in candidates]
                )
            else:
                segments = self.segments
            for segment in segments:
                evaluated = eval_term(other, segment, binding)
                if evaluated is None:
                    continue
                value = evaluated[0]
                if isinstance(value, bool):
                    continue
                if isinstance(value, int):
                    int_bounds.add(value)
                else:
                    exact_bounds.add(value)
        return int_bounds, exact_bounds

    def _pruned_candidates(
        self,
        atom: ast.Formula,
        object_vars: List[str],
        pool: Sequence[str],
    ) -> Dict[str, List[str]]:
        """Heuristic candidate narrowing from top-level type constraints."""
        candidates = {name: list(pool) for name in object_vars}
        for node in atom.walk():
            if (
                isinstance(node, ast.Compare)
                and node.op == "="
                and isinstance(node.left, ast.AttrFunc)
                and node.left.name == "type"
                and len(node.left.args) == 1
                and isinstance(node.left.args[0], ast.ObjectVar)
                and isinstance(node.right, ast.Const)
                and isinstance(node.right.value, str)
            ):
                name = node.left.args[0].name
                if name in candidates:
                    typed = set(self.index.object_ids_of_type(node.right.value))
                    candidates[name] = [
                        object_id
                        for object_id in candidates[name]
                        if object_id in typed
                    ]
        return candidates


# ---------------------------------------------------------------------------
# attribute-variable helpers
# ---------------------------------------------------------------------------
def _compared_term(node: ast.Compare, attr_var: str) -> Optional[ast.Term]:
    """The attr-var-free side of a comparison against ``attr_var``."""
    left_is_var = isinstance(node.left, ast.AttrVar) and node.left.name == attr_var
    right_is_var = (
        isinstance(node.right, ast.AttrVar) and node.right.name == attr_var
    )
    if left_is_var and not right_is_var:
        return node.right
    if right_is_var and not left_is_var:
        return node.left
    return None


def _check_attr_var_usage(atom: ast.Formula) -> None:
    """Enforce the paper's restriction on attribute-variable predicates."""
    for node in atom.walk():
        if isinstance(node, ast.Compare):
            left_vars = term_attr_vars(node.left)
            right_vars = term_attr_vars(node.right)
            if left_vars and right_vars:
                raise HTLTypeError(
                    "attribute variables may only be compared with "
                    f"attribute-variable-free expressions: {node!r}"
                )
            for side, vars_in_side in (
                (node.left, left_vars),
                (node.right, right_vars),
            ):
                if vars_in_side and not isinstance(side, ast.AttrVar):
                    raise HTLTypeError(
                        "attribute variables may appear only bare on one "
                        f"side of a comparison: {node!r}"
                    )
        elif isinstance(node, ast.Rel):
            for arg in node.args:
                if term_attr_vars(arg):
                    raise HTLTypeError(
                        "attribute variables may not appear in relationship "
                        f"arguments: {node!r}"
                    )
        elif isinstance(node, ast.Present):
            continue


def _elementary_ranges(
    bounds: "Tuple[Set[int], Set[Union[str, float]]]",
) -> List[Range]:
    """Partition the value space at the boundary values.

    An integer-typed variable splits into singletons at each bound and the
    open blocks between; a non-integer-typed variable splits into one exact
    range per mentioned value plus the complement ("any other value", whose
    satisfaction pattern is uniform because only equality predicates apply).
    Mixing value types on one variable is rejected — an attribute variable
    has one type, as in the paper.
    """
    int_bounds, exact_bounds = bounds
    if int_bounds and exact_bounds:
        raise HTLTypeError(
            "an attribute variable is compared against both integer and "
            f"non-integer values ({sorted(int_bounds)} vs "
            f"{sorted(exact_bounds, key=repr)})"
        )
    if exact_bounds:
        ranges: List[Range] = [
            Range(exact=value) for value in sorted(exact_bounds, key=repr)
        ]
        ranges.append(Range(excluded=frozenset(exact_bounds)))
        return ranges
    ordered = sorted(int_bounds)
    if not ordered:
        return [FULL]
    ranges = [interval(None, ordered[0] - 1)]
    for position, bound in enumerate(ordered):
        ranges.append(interval(bound, bound))
        next_bound = (
            ordered[position + 1] if position + 1 < len(ordered) else None
        )
        if next_bound is None:
            ranges.append(interval(bound + 1, None))
        elif bound + 1 <= next_bound - 1:
            ranges.append(interval(bound + 1, next_bound - 1))
    return ranges


def _range_sample(value_range: Range) -> Optional[Union[str, int, float]]:
    if value_range.is_exact():
        return value_range.exact  # type: ignore[return-value]
    return value_range.sample()
