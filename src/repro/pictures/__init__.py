"""Picture-retrieval substrate: atom scoring, indices, similarity tables."""

from repro.pictures.index import MetadataIndex
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.pictures.scoring import max_similarity, score

__all__ = [
    "PictureRetrievalSystem",
    "MetadataIndex",
    "score",
    "max_similarity",
]
