"""Picture-retrieval substrate: atom scoring, indices, similarity tables."""

from repro.pictures.index import MetadataIndex
from repro.pictures.retrieval import PictureRetrievalSystem, PictureStats
from repro.pictures.scoring import max_similarity, score
from repro.pictures.support import AtomSupport, SupportAnalyzer

__all__ = [
    "PictureRetrievalSystem",
    "PictureStats",
    "MetadataIndex",
    "SupportAnalyzer",
    "AtomSupport",
    "score",
    "max_similarity",
]
