"""Sharded corpus: scatter-gather top-k with bound-exchange pruning.

Public surface:

* :class:`ShardedCorpus` — partitioned corpus front end; ``top_k`` runs
  the scatter-gather query (DESIGN.md §12).
* :class:`Shard` — one shard: id, owned videos, lazy loader.
* :class:`RetryPolicy` — jittered exponential backoff for transient
  shard-load faults, behind a per-shard circuit breaker.
* :func:`slice_budget` — split one query budget into per-shard slices.

The on-disk layout lives in :mod:`repro.store.sharding`
(``save_sharded`` / ``load_layout``); the query-side plumbing
(:class:`~repro.core.topk.BoundExchange`,
:meth:`~repro.core.topk.TopKResult.merge`) lives in
:mod:`repro.core.topk`.
"""

from repro.shard.corpus import (
    DEFAULT_RETRY,
    RetryPolicy,
    Shard,
    ShardedCorpus,
    slice_budget,
)

__all__ = [
    "DEFAULT_RETRY",
    "RetryPolicy",
    "Shard",
    "ShardedCorpus",
    "slice_budget",
]
