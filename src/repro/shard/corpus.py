"""Scatter-gather top-k over a sharded corpus (DESIGN.md §12).

``top_k_across_videos`` fans one thread pool over one in-process
database, so corpus size is bounded by a single index build and a single
snapshot load.  :class:`ShardedCorpus` is the horizontal step past that
limit: the corpus is partitioned into N shards (each owning its own
:class:`~repro.store.Store` snapshot directory and metadata indices, see
:mod:`repro.store.sharding`), and a query *scatters* per-shard top-k
evaluations over an executor, then *gathers* with
:meth:`~repro.core.topk.TopKResult.merge`.

The gather is not a passive merge: all shards share one
:class:`~repro.core.topk.BoundExchange`, so the running global
k-th-best score flows back into still-running shards and prunes their
videos through the existing admissible per-video upper bounds.  A
lagging shard full of weak videos does next to no scoring once the
leaders have published k good values — the bound exchange is what makes
scatter-gather cheaper than N independent queries, not just wider.

Failure semantics compose with the resilience layer (DESIGN.md §8): a
dead or corrupt shard surfaces as a batch of ``failed``
:class:`~repro.core.topk.VideoOutcome` entries named from the layout
manifest — lenient queries degrade to the surviving shards
(``partial=True``), strict queries raise :class:`~repro.errors.ShardError`
with the load failure chained.  A query budget is sliced across shards:
the wall-clock deadline is shared (it is a point in time), the step
ceiling is divided so the whole scatter respects the caller's total.

Shards execute on a thread-pool executor: the corpus objects are
in-process Python structures (per-shard stores load into the same
interpreter), so threads share them for free where a process pool would
pay a full pickle of every shard per query; the evaluation hot loops are
the same ones ``top_k_across_videos`` already fans out.  Multi-process
(and later multi-host) placement only changes each shard's loader.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core import instrument, resilience, trace
from repro.core.engine import RetrievalEngine
from repro.core.topk import (
    OUTCOME_FAILED,
    OUTCOME_TIMED_OUT,
    BoundExchange,
    TopKResult,
    VideoOutcome,
    top_k_within_shard,
)
from repro.errors import BudgetExceededError, ShardError
from repro.htl import ast
from repro.htl.pretty import pretty
from repro.model.database import VideoDatabase
from repro.store.sharding import (
    ShardLayout,
    load_layout,
    shard_id,
    split_database,
)


def slice_budget(
    budget: Optional[resilience.QueryBudget], n_shards: int
) -> List[Optional[resilience.QueryBudget]]:
    """Derive per-shard budget slices from one query budget.

    The deadline is a point in time, so every slice carries the parent's
    *remaining* wall-clock; the step ceiling is work, so the parent's
    remaining steps are divided across shards (remainder to the earliest
    shards, minimum one step each).  An already-expired parent raises
    here, before any shard is touched.
    """
    if budget is None:
        return [None] * n_shards
    budget.checkpoint("shard-scatter")
    deadline = budget.remaining_ms()
    if deadline is not None:
        deadline = max(deadline, 0.001)
    steps = None
    if budget.max_steps is not None:
        steps = max(1, budget.max_steps - budget.steps)
    base, extra = divmod(steps, n_shards) if steps is not None else (0, 0)
    slices: List[Optional[resilience.QueryBudget]] = []
    for position in range(n_shards):
        max_steps = None
        if steps is not None:
            max_steps = max(1, base + (1 if position < extra else 0))
        slices.append(
            resilience.QueryBudget(deadline_ms=deadline, max_steps=max_steps)
        )
    return slices


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient shard-load faults.

    ``attempts`` bounds total tries (1 = the old no-retry behaviour).
    The nth retry sleeps ``base_delay_ms × multiplier^(n-1)`` capped at
    ``max_delay_ms``, then scaled into ``[1-jitter, 1)`` of itself so a
    scatter's workers do not hammer a recovering disk in lockstep.
    Defaults are sized for in-process stores: three tries inside ~50ms.
    """

    attempts: int = 3
    base_delay_ms: float = 5.0
    max_delay_ms: float = 80.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_ms <= 0 or self.max_delay_ms <= 0:
            raise ValueError("retry delays must be positive")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(
        self, attempt: int, rng: Callable[[], float] = random.random
    ) -> float:
        """Sleep before retry number ``attempt`` (1-based), in seconds."""
        raw = min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** (attempt - 1),
        )
        return raw * (1.0 - self.jitter + self.jitter * rng()) / 1000.0


#: The serving default: bounded, fast, and jittered.
DEFAULT_RETRY = RetryPolicy()


class Shard:
    """One shard: an id, the videos it owns, and a lazy database loader.

    The loader runs at most once per successful load (memoized under a
    lock); every load attempt passes the ``shard-load`` fault site first,
    so the chaos suite can kill a shard deterministically.  Load
    failures are not cached — a shard that recovers on disk recovers on
    the next query.

    Transient faults retry under the shard's :class:`RetryPolicy`
    behind a per-shard circuit breaker: a shard that keeps failing
    opens its breaker and subsequent queries fail fast (no retry storm
    against a dead disk) until the cooldown probe readmits one trial.
    ``rng`` and ``sleep`` are injectable so chaos tests replay the
    backoff schedule deterministically without wall-clock waits.
    """

    __slots__ = (
        "shard_id",
        "videos",
        "retry",
        "breaker",
        "_loader",
        "_database",
        "_lock",
        "_rng",
        "_sleep",
    )

    def __init__(
        self,
        shard_id: str,
        videos: Sequence[str],
        loader: Callable[[], VideoDatabase],
        *,
        retry: Optional[RetryPolicy] = None,
        rng: Callable[[], float] = random.random,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.shard_id = shard_id
        self.videos: Tuple[str, ...] = tuple(videos)
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.breaker = resilience.CircuitBreaker(f"shard-{shard_id}-load")
        self._loader = loader
        self._database: Optional[VideoDatabase] = None
        self._lock = threading.Lock()
        self._rng = rng
        self._sleep = sleep

    def database(self) -> VideoDatabase:
        """The shard's database, loading (and memoizing) on first use."""
        if not self.breaker.allow():
            raise ShardError(
                f"shard {self.shard_id} load breaker is open; failing fast",
                shard=self.shard_id,
            )
        attempt = 0
        while True:
            try:
                resilience.fault(resilience.SITE_SHARD_LOAD)
                with self._lock:
                    if self._database is None:
                        self._database = self._loader()
                        instrument.count(instrument.SHARD_LOADED)
                        trace.event(instrument.SHARD_LOADED, self.shard_id)
                    database = self._database
            except Exception:
                self.breaker.record_failure()
                attempt += 1
                # Stop early (raising the genuine failure, not a
                # breaker message) once the breaker opens mid-retry.
                if (
                    attempt >= self.retry.attempts
                    or self.breaker.state == resilience.OPEN
                ):
                    raise
                delay = self.retry.backoff_s(attempt, self._rng)
                instrument.count(instrument.SHARD_LOAD_RETRIED)
                trace.event(
                    instrument.SHARD_LOAD_RETRIED,
                    f"{self.shard_id}: attempt {attempt + 1}/"
                    f"{self.retry.attempts} after {delay * 1000.0:.1f}ms",
                )
                self._sleep(delay)
                continue
            self.breaker.record_success()
            return database

    def __repr__(self) -> str:
        return f"Shard({self.shard_id!r}, {len(self.videos)} videos)"


def _store_loader(
    layout: ShardLayout, spec, verify: bool, keep: int
) -> Callable[[], VideoDatabase]:
    def load() -> VideoDatabase:
        loaded = layout.store(spec, keep=keep).load(verify=verify)
        owned = set(spec.videos)
        held = set(loaded.database.names())
        if held != owned:
            raise ShardError(
                f"shard {spec.shard_id} loaded snapshot "
                f"{loaded.snapshot_id} holding {sorted(held)} but the "
                f"layout assigns it {sorted(owned)}",
                path=layout.store_path(spec),
                shard=spec.shard_id,
            )
        return loaded.database

    return load


class ShardedCorpus:
    """A corpus partitioned into shards, queried by scatter-gather top-k."""

    def __init__(self, shards: Sequence[Shard]):
        if not shards:
            raise ShardError("a sharded corpus needs at least one shard")
        seen_ids = set()
        owners = {}
        for shard in shards:
            if shard.shard_id in seen_ids:
                raise ShardError(
                    f"duplicate shard id {shard.shard_id!r}",
                    shard=shard.shard_id,
                )
            seen_ids.add(shard.shard_id)
            for name in shard.videos:
                if name in owners:
                    raise ShardError(
                        f"video {name!r} owned by both {owners[name]!r} "
                        f"and {shard.shard_id!r}",
                        shard=shard.shard_id,
                    )
                owners[name] = shard.shard_id
        self.shards: Tuple[Shard, ...] = tuple(shards)

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_database(
        cls,
        database: VideoDatabase,
        n_shards: int,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> "ShardedCorpus":
        """Partition an in-memory database (round-robin, no disk)."""
        parts = split_database(database, n_shards)
        return cls(
            [
                Shard(
                    shard_id(position),
                    part.names(),
                    lambda part=part: part,
                    retry=retry,
                )
                for position, part in enumerate(parts)
            ]
        )

    @classmethod
    def from_directory(
        cls,
        root,
        *,
        verify: bool = True,
        keep: int = 2,
        retry: Optional[RetryPolicy] = None,
    ) -> "ShardedCorpus":
        """Open a sharded store layout written by
        :func:`repro.store.sharding.save_sharded`.

        Only the layout manifest is read here; each shard's store loads
        lazily on first query, with the store's own corruption recovery
        underneath and ownership cross-checked against the manifest.
        """
        layout = load_layout(root)
        return cls(
            [
                Shard(
                    spec.shard_id,
                    spec.videos,
                    _store_loader(layout, spec, verify, keep),
                    retry=retry,
                )
                for spec in layout.shards
            ]
        )

    # -- introspection ---------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def video_names(self) -> List[str]:
        return [name for shard in self.shards for name in shard.videos]

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedCorpus({self.n_shards} shards, "
            f"{len(self.video_names)} videos)"
        )

    # -- the query -------------------------------------------------------
    def top_k(
        self,
        engine: RetrievalEngine,
        formula: ast.Formula,
        k: int,
        level: int = 2,
        *,
        parallelism: Optional[int] = None,
        prune: bool = True,
        bound_exchange: bool = True,
        budget: Optional[resilience.QueryBudget] = None,
        policy: Optional[resilience.ResiliencePolicy] = None,
        lenient: bool = False,
        profile: bool = False,
    ) -> TopKResult:
        """Scatter the query over every shard and gather the global top-k.

        ``parallelism`` is the number of *shard* workers running
        concurrently (videos within a shard evaluate serially; the
        per-video thread pool and the per-shard executor compose badly,
        and shards are the coarser, better-balanced unit).
        ``bound_exchange=False`` degrades to naive scatter-gather —
        every shard prunes only against its own heap — which is the
        measured baseline of ``benchmarks/bench_shards.py``, not a mode
        anyone should serve from.

        Rankings are identical to the unsharded serial scan: per-shard
        top-k sets are exact for their videos (exchange pruning only
        skips videos that cannot crack the *global* k-th score), and the
        merge of exact disjoint top-k sets under the canonical total
        order is the global top-k.
        """
        if k <= 0:
            return TopKResult([])
        recorder = trace.current()
        if recorder is None and profile:
            with trace.recording() as recorder:
                return self._traced_top_k(
                    recorder, engine, formula, k, level, parallelism,
                    prune, bound_exchange, budget, policy, lenient,
                )
        if recorder is not None:
            return self._traced_top_k(
                recorder, engine, formula, k, level, parallelism, prune,
                bound_exchange, budget, policy, lenient,
            )
        return self._gather(
            engine, formula, k, level, parallelism, prune, bound_exchange,
            budget, policy, lenient,
        )

    def _traced_top_k(
        self, recorder, engine, formula, k, level, parallelism, prune,
        bound_exchange, budget, policy, lenient,
    ) -> TopKResult:
        text = pretty(formula)
        if len(text) > 60:
            text = text[:57] + "..."
        with recorder.span(
            trace.KIND_QUERY,
            f"sharded top-{k}: {text}",
            k=k,
            level=level,
            shards=self.n_shards,
            exchange=bound_exchange,
        ) as query_span:
            result = self._gather(
                engine, formula, k, level, parallelism, prune,
                bound_exchange, budget, policy, lenient,
            )
            result.profile = query_span
            return result

    def _lenient(self, policy, lenient) -> bool:
        if lenient or (policy is not None and policy.lenient):
            return True
        ambient = resilience.current()
        return ambient is not None and ambient.policy.lenient

    def _gather(
        self, engine, formula, k, level, parallelism, prune,
        bound_exchange, budget, policy, lenient,
    ) -> TopKResult:
        exchange = (
            BoundExchange(k) if (prune and bound_exchange) else None
        )
        slices = slice_budget(budget, self.n_shards)
        strict = not self._lenient(policy, lenient)

        def run_shard(shard: Shard, budget_slice) -> TopKResult:
            recorder = trace.current()
            span = (
                recorder.span(
                    trace.KIND_SHARD, shard.shard_id, videos=len(shard.videos)
                )
                if recorder is not None
                else nullcontext()
            )
            with span:
                try:
                    database = shard.database()
                except Exception as error:
                    instrument.count(instrument.SHARD_FAILED)
                    trace.event(
                        instrument.SHARD_FAILED,
                        f"{shard.shard_id}: {type(error).__name__}",
                    )
                    failure = ShardError(
                        f"shard {shard.shard_id} failed to load: {error}",
                        shard=shard.shard_id,
                    )
                    failure.__cause__ = error
                    if strict:
                        raise failure
                    # The layout manifest names the dead shard's videos,
                    # so the degradation is visible per video even though
                    # the shard's own store never answered.
                    return TopKResult(
                        [],
                        [
                            VideoOutcome(name, OUTCOME_FAILED, failure)
                            for name in shard.videos
                        ],
                        partial=True,
                    )
                return top_k_within_shard(
                    engine,
                    formula,
                    database,
                    k,
                    level,
                    parallelism=None,
                    prune=prune,
                    budget=budget_slice,
                    policy=policy,
                    lenient=not strict,
                    exchange=exchange,
                )

        if parallelism is None or parallelism <= 1:
            results = [
                run_shard(shard, budget_slice)
                for shard, budget_slice in zip(self.shards, slices)
            ]
            return TopKResult.merge(*results, k=k)

        # Workers adopt the submitting thread's trace position so shard
        # spans stay children of this query's span.
        token = trace.capture()

        def visit(shard: Shard, budget_slice) -> TopKResult:
            with trace.adopt(token):
                return run_shard(shard, budget_slice)

        results: List[TopKResult] = []
        fatal: Optional[BaseException] = None
        workers = min(parallelism, self.n_shards)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                (shard, pool.submit(visit, shard, budget_slice))
                for shard, budget_slice in zip(self.shards, slices)
            ]
            for shard, future in futures:
                if fatal is not None and future.cancel():
                    results.append(
                        TopKResult(
                            [],
                            [
                                VideoOutcome(
                                    name, OUTCOME_TIMED_OUT, fatal
                                )
                                for name in shard.videos
                            ],
                            partial=True,
                        )
                    )
                    continue
                try:
                    results.append(future.result())
                except BudgetExceededError as exc:
                    if fatal is None:
                        fatal = exc
                    results.append(
                        TopKResult(
                            [],
                            [
                                VideoOutcome(name, OUTCOME_TIMED_OUT, exc)
                                for name in shard.videos
                            ],
                            partial=True,
                        )
                    )
                except Exception as exc:
                    # Only strict workers raise; stop the scatter.
                    if fatal is None:
                        fatal = exc
        if fatal is not None and strict:
            raise fatal
        return TopKResult.merge(*results, k=k)
