"""Ablation: the direct method's linearity claim.

The paper: "It is also to be observed that the time taken by the direct
method increases linearly with the size which is in confirmity with our
complexity analysis."  We sweep sizes over a decade and check that the
per-entry cost stays flat (within noise), for both AND and UNTIL.
"""

import pytest

from repro.bench.harness import run_direct
from repro.htl import parse
from repro.workloads.synthetic import perf_workload

SIZES = (20_000, 40_000, 80_000, 160_000)


@pytest.mark.parametrize(
    "label, formula_text",
    [("AND", "$P1 and $P2"), ("UNTIL", "$P1 until $P2")],
)
def test_direct_linearity(benchmark, label, formula_text, report):
    formula = parse(formula_text)
    times = {}
    for size in SIZES:
        workload = perf_workload(size)
        times[size] = run_direct(formula, workload.lists, repeat=5).seconds
        report(
            f"Ablation: direct-method scaling ({label})",
            {
                "Size": size,
                "Seconds": f"{times[size]:.5f}",
                "us/shot": f"{times[size] / size * 1e6:.3f}",
            },
        )
    # Linearity: an 8x size increase should cost within ~3x of 8x (very
    # loose bound; guards against accidental quadratic behaviour).
    growth = times[SIZES[-1]] / max(times[SIZES[0]], 1e-9)
    size_growth = SIZES[-1] / SIZES[0]
    assert growth < size_growth * 3.0, f"superlinear growth: {growth:.1f}x"

    workload = perf_workload(SIZES[0])
    benchmark.pedantic(
        lambda: run_direct(formula, workload.lists, repeat=1).result,
        rounds=3,
        iterations=1,
    )
