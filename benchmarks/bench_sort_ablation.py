"""Ablation: the sort step of the direct method.

The paper's reported direct times include "the time required to sort the
tables on the start ids" and note "we tried different sorting algorithms
... the numbers given are for Merge sort".  Our lists are kept sorted by
construction; this ablation measures the cost of re-sorting shuffled
input tables against operating on pre-sorted ones, isolating the
O(l log l) term of the complexity analysis.
"""

import random

import pytest

from repro.core.ops import and_lists, until_lists
from repro.core.simlist import SimilarityList
from repro.workloads.synthetic import perf_workload

SIZE = 100_000


@pytest.fixture(scope="module")
def workload():
    return perf_workload(SIZE)


def shuffled_rows(sim, seed):
    rows = [((entry.begin, entry.end), entry.actual) for entry in sim]
    random.Random(seed).shuffle(rows)
    return rows, sim.maximum


def test_presorted_and(benchmark, workload):
    result = benchmark(and_lists, workload.p1, workload.p2)
    assert result.maximum == pytest.approx(40.0)


def test_sorting_plus_and(benchmark, workload, report):
    rows1, max1 = shuffled_rows(workload.p1, 1)
    rows2, max2 = shuffled_rows(workload.p2, 2)

    def sort_then_merge():
        left = SimilarityList.from_entries(rows1, max1)
        right = SimilarityList.from_entries(rows2, max2)
        return and_lists(left, right)

    result = benchmark(sort_then_merge)
    assert result.maximum == pytest.approx(40.0)
    report(
        "Ablation: sort cost (100k shots)",
        {
            "Pipeline": "sort + AND-merge",
            "Entries": len(workload.p1) + len(workload.p2),
        },
    )


def test_presorted_until(benchmark, workload):
    result = benchmark(until_lists, workload.p1, workload.p2, 0.5)
    assert result.maximum == pytest.approx(20.0)


def test_sorting_plus_until(benchmark, workload):
    rows1, max1 = shuffled_rows(workload.p1, 3)
    rows2, max2 = shuffled_rows(workload.p2, 4)

    def sort_then_merge():
        left = SimilarityList.from_entries(rows1, max1)
        right = SimilarityList.from_entries(rows2, max2)
        return until_lists(left, right, 0.5)

    result = benchmark(sort_then_merge)
    assert result.maximum == pytest.approx(20.0)
