"""§4.2's "two other more complex formulas".

The paper: "In addition to the two basic formulas, we also analyzed the
performance of the two approaches on two other more complex formulas.
The results for these more complex cases are consistent with those for
the simpler formulas and are left out due to lack of space."  We pick two
natural compositions over three predicates and verify the same pattern —
direct ≪ SQL, identical results, near-linear direct growth.
"""

import pytest

from repro.bench.harness import run_direct, run_sql
from repro.htl import parse
from repro.workloads.synthetic import perf_workload

SIZES = (10_000, 50_000, 100_000)

COMPLEX_1 = parse("$P1 and next ($P2 until $P3)")  # the paper's formula (A)
COMPLEX_2 = parse("($P1 until $P2) and eventually ($P1 and $P3)")


@pytest.fixture(scope="module", params=SIZES)
def workload(request):
    return perf_workload(request.param, extra_predicates=1)


@pytest.mark.parametrize(
    "label, formula",
    [("P1 and next (P2 until P3)", COMPLEX_1),
     ("(P1 until P2) and eventually (P1 and P3)", COMPLEX_2)],
    ids=["formulaA", "nested"],
)
def test_complex_formula(benchmark, workload, label, formula, report):
    benchmark.pedantic(
        lambda: run_direct(formula, workload.lists, repeat=1).result,
        rounds=3,
        iterations=1,
    )
    direct = run_direct(formula, workload.lists)
    sql = run_sql(formula, workload.lists, workload.size)
    assert direct.result == sql.result, "systems disagree"
    report(
        "Complex formulas (consistent with Tables 5-6, per paper text)",
        {
            "Formula": label,
            "Size": workload.size,
            "Direct": f"{direct.seconds:.4f}",
            "SQL-based": f"{sql.seconds:.4f}",
            "Ratio": f"{sql.seconds / direct.seconds:.1f}x",
        },
    )
