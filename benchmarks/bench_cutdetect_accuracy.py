"""Substrate experiment: cut-detection accuracy and throughput.

The Casablanca pipeline starts with cut detection (§4.1, refs [21, 11]).
The paper does not report detector accuracy; this bench characterises our
substitute so the substitution in DESIGN.md §3 is quantified: boundary
recall/precision across within-shot noise levels, plus frames/second.
"""

import pytest

from repro.analyzer import (
    ShotSpec,
    boundary_accuracy,
    detect_stream,
    synthesize_stream,
)

NOISE_LEVELS = (0.005, 0.02, 0.05, 0.1)


def shot_plan(seed):
    import random

    rng = random.Random(seed)
    return [ShotSpec(rng.randint(8, 40)) for __ in range(40)]


@pytest.mark.parametrize("noise", NOISE_LEVELS)
def test_accuracy_under_noise(noise, report, benchmark):
    recalls = []
    precisions = []
    streams = [
        synthesize_stream(shot_plan(seed), noise=noise, seed=seed)
        for seed in range(10)
    ]

    def detect_all():
        return [detect_stream(stream) for stream in streams]

    all_shots = benchmark.pedantic(detect_all, rounds=1, iterations=1)
    for stream, shots in zip(streams, all_shots):
        recall, precision = boundary_accuracy(shots, stream.boundaries)
        recalls.append(recall)
        precisions.append(precision)
    mean_recall = sum(recalls) / len(recalls)
    mean_precision = sum(precisions) / len(precisions)
    report(
        "Substrate: cut-detection accuracy vs within-shot noise",
        {
            "Noise": noise,
            "Recall": f"{mean_recall:.2%}",
            "Precision": f"{mean_precision:.2%}",
        },
    )
    # Clean streams segment essentially perfectly; past ~0.05 the
    # within-shot jitter rivals the signature distances and the twin
    # thresholds break down (first precision, then recall) - that
    # breakdown point is the finding this bench records.
    if noise <= 0.01:
        assert mean_recall == 1.0
        assert mean_precision == 1.0
    elif noise <= 0.02:
        assert mean_recall >= 0.98
        assert mean_precision >= 0.98
    elif noise <= 0.05:
        assert mean_recall >= 0.75
    else:
        assert mean_recall >= 0.35


def test_detection_throughput(benchmark):
    stream = synthesize_stream(shot_plan(99), noise=0.01, seed=99)
    shots = benchmark(detect_stream, stream)
    assert len(shots) == 40
