"""Observability overhead: span sites when tracing is off, and the cost
of a fully traced query (DESIGN.md §10).

Not a paper table — this gates the tracing layer's contract:

1. **Disabled path.**  Every span site costs one thread-local attribute
   read (plus one boolean check at ``staged_span`` sites) when no
   recorder is installed.  End-to-end A/B timing cannot resolve a <= 2%
   effect against run-to-run noise on this workload, so the gate is
   analytic and deterministic: micro-benchmark the disabled-path cost of
   one site, count the sites an actual query executes (one span per site
   execution in a traced run), and require

       site_count * per_site_seconds / bare_seconds <= 2%

   on the sparse 5k-segment configuration (500 segments in quick mode —
   same gate, the analytic estimate does not get noisier when fast).

2. **Enabled path.**  A fully traced, metrics-enabled run is allowed to
   cost real money; the benchmark reports the ratio and the per-stage
   breakdown/histograms so a regression in the tracing layer itself is
   visible in ``BENCH_trace.json``.

Emits ``BENCH_trace.json`` in the current working directory.  Set
``BENCH_QUICK=1`` for a seconds-scale run (CI).
"""

import json
import os
import random
import time
from pathlib import Path

from repro.bench.reporting import metrics_payload, write_report_json
from repro.core import instrument, trace
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video

from benchmarks.bench_atom_tables import build_segments

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_SEGMENTS = 500 if QUICK else 5_000
DENSITY = 0.05
N_VIDEOS = 3 if QUICK else 4
REPEAT = 3 if QUICK else 5
#: The disabled-path contract: span sites may cost at most 2% of the
#: bare sparse-5k runtime.  The analytic estimate is deterministic, so
#: quick mode keeps the same gate.
OVERHEAD_LIMIT = 0.02
#: Iterations of the disabled-site micro-benchmark.
MICRO_ITERATIONS = 20_000 if QUICK else 100_000

QUERY = parse(
    "(exists x . present(x) and type(x) = 'person') and "
    "eventually (exists x . holds_gun(x))"
)

RESULTS_PATH = Path("BENCH_trace.json")


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def _write_payload(key, value):
    payload = (
        json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    )
    payload["quick"] = QUICK
    payload[key] = value
    write_report_json(RESULTS_PATH, payload)


def _corpus():
    rng = random.Random(1997)
    database = VideoDatabase()
    for position in range(N_VIDEOS):
        database.add(
            flat_video(
                f"v{position}", build_segments(N_SEGMENTS, DENSITY, rng)
            )
        )
    return database


def _disabled_site_seconds():
    """Best-of cost of one span site on the disabled path (no recorder,
    metrics off): the exact code every instrumented region runs when
    observability is idle."""
    assert trace.current() is None
    assert not instrument.is_enabled()

    def burst():
        for __ in range(MICRO_ITERATIONS):
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "bench-noop"
            ):
                pass

    seconds, __ = best_of(burst)
    return seconds / MICRO_ITERATIONS


def test_disabled_path_overhead(report):
    instrument.disable()
    instrument.reset()
    database = _corpus()
    engine = RetrievalEngine()
    k = 10

    def bare():
        return top_k_across_videos(engine, QUERY, database, k=k)

    bare_seconds, bare_ranking = best_of(bare)

    # One span per site execution: a traced run of the same query counts
    # exactly the sites the bare run passes through.
    traced = top_k_across_videos(
        RetrievalEngine(), QUERY, database, k=k, profile=True
    )
    assert traced.segments == bare_ranking.segments
    span_sites = sum(1 for __ in traced.profile.walk())

    per_site = _disabled_site_seconds()
    estimated = span_sites * per_site / bare_seconds

    report(
        "Tracing disabled-path overhead (analytic gate)",
        {
            "Segments": N_SEGMENTS,
            "Videos": N_VIDEOS,
            "Bare": f"{bare_seconds:.4f}s",
            "Sites": span_sites,
            "Per-site": f"{per_site * 1e9:.0f}ns",
            "Estimated": f"{estimated:+.2%}",
            "Limit": f"{OVERHEAD_LIMIT:+.0%}",
        },
    )
    assert estimated <= OVERHEAD_LIMIT, (
        f"disabled span sites cost an estimated {estimated:+.2%} of the "
        f"bare runtime ({span_sites} sites x {per_site * 1e9:.0f}ns on "
        f"{bare_seconds:.4f}s; limit {OVERHEAD_LIMIT:+.0%})"
    )
    _write_payload(
        "disabled_overhead",
        {
            "n_segments": N_SEGMENTS,
            "n_videos": N_VIDEOS,
            "bare_seconds": bare_seconds,
            "span_sites": span_sites,
            "per_site_seconds": per_site,
            "estimated_overhead": estimated,
            "limit": OVERHEAD_LIMIT,
        },
    )


def test_enabled_tracing_cost(report):
    database = _corpus()
    engine = RetrievalEngine()
    k = 10

    def bare():
        return top_k_across_videos(engine, QUERY, database, k=k)

    def traced():
        instrument.enable()
        try:
            return top_k_across_videos(
                engine, QUERY, database, k=k, profile=True
            )
        finally:
            instrument.disable()

    bare_seconds, bare_ranking = best_of(bare)
    traced_seconds, traced_ranking = best_of(traced)
    # Tracing must never change the answer, only the clock.
    assert traced_ranking.segments == bare_ranking.segments

    ratio = traced_seconds / bare_seconds
    root = traced_ranking.profile
    breakdown = {
        name: {"seconds": total.seconds, "calls": total.calls}
        for name, total in root.stage_totals().items()
    }
    report(
        "Fully traced query cost (tracing + metrics enabled)",
        {
            "Segments": N_SEGMENTS,
            "Videos": N_VIDEOS,
            "Bare": f"{bare_seconds:.4f}s",
            "Traced": f"{traced_seconds:.4f}s",
            "Ratio": f"{ratio:.2f}x",
            "Spans": sum(1 for __ in root.walk()),
        },
    )
    _write_payload(
        "enabled_tracing",
        {
            "n_segments": N_SEGMENTS,
            "n_videos": N_VIDEOS,
            "bare_seconds": bare_seconds,
            "traced_seconds": traced_seconds,
            "ratio": ratio,
            "stage_breakdown": breakdown,
            "metrics": metrics_payload(),
        },
    )
