"""Ablation: interval compression of similarity lists.

The whole point of the §3.1 representation is that a similarity list
stores runs, not segments ("Each such entry indicates that the formula f
has the fractional similarity value at all the video segments ... between
them").  This bench quantifies the compression on the §4.2 workloads and
measures how AND-merge cost scales with *entries* rather than *segments*.
"""

import pytest

from repro.core.ops import and_lists
from repro.workloads.synthetic import perf_workload, random_similarity_list

import random


@pytest.mark.parametrize("size", (10_000, 100_000))
def test_compression_ratio(size, report, benchmark):
    workload = benchmark.pedantic(
        perf_workload, args=(size,), rounds=1, iterations=1
    )
    for name in ("P1", "P2"):
        sim = workload.lists[name]
        entries = len(sim)
        covered = sim.support_size()
        report(
            "Ablation: interval compression (entries vs covered segments)",
            {
                "Size": size,
                "List": name,
                "Entries": entries,
                "Covered segments": covered,
                "Segments/entry": f"{covered / entries:.1f}",
                "vs per-segment rows": f"{covered / entries:.1f}x smaller",
            },
        )
        assert entries < covered  # compression is real on run-structured data


@pytest.mark.parametrize("mean_run", (1.0, 4.0, 16.0))
def test_merge_cost_tracks_entries_not_segments(benchmark, mean_run, report):
    """Same covered mass, different run structure: longer runs → fewer
    entries → faster merges, at identical segment coverage."""
    rng1, rng2 = random.Random(1), random.Random(2)
    left = random_similarity_list(
        100_000, mean_run_length=mean_run, rng=rng1
    )
    right = random_similarity_list(
        100_000, mean_run_length=mean_run, rng=rng2
    )
    result = benchmark(and_lists, left, right)
    report(
        "Ablation: AND-merge cost vs run structure (100k shots)",
        {
            "Mean run length": mean_run,
            "Entries (P1+P2)": len(left) + len(right),
            "Output entries": len(result),
        },
    )
