"""Tables 1–4 of the paper: the Casablanca test case (§4.1).

Regenerates the similarity tables for the atomic predicates (Tables 1–2)
from the reconstructed metadata through the picture-retrieval system, the
``eventually`` intermediate (Table 3), and the ranked final result of
Query 1 (Table 4), asserting exact equality with the published values —
and benchmarks each stage.
"""

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.ops import and_lists, eventually_list
from repro.core.topk import ranked_entries
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.workloads.casablanca import (
    EVENTUALLY_MOVING_TRAIN_ROWS,
    MAN_WOMAN_ROWS,
    MOVING_TRAIN_ROWS,
    QUERY1_RANKED_ROWS,
    casablanca_database,
    expected_eventually_moving_train,
    expected_query1,
    man_woman_list,
    man_woman_query,
    moving_train_list,
    moving_train_query,
    query1,
)


@pytest.fixture(scope="module")
def database():
    return casablanca_database()


@pytest.fixture(scope="module")
def pictures(database):
    video = database.get("making-of-casablanca")
    return PictureRetrievalSystem(
        [node.metadata for node in video.nodes_at_level(2)]
    )


def test_table1_moving_train(benchmark, pictures, report):
    sim = benchmark(pictures.similarity_list, moving_train_query())
    assert sim == moving_train_list()
    for begin, end, actual in MOVING_TRAIN_ROWS:
        report(
            "Table 1: Moving-Train",
            {"Start-id": begin, "End-id": end, "Similarity-value": actual},
        )


def test_table2_man_woman(benchmark, pictures, report):
    sim = benchmark(pictures.similarity_list, man_woman_query())
    assert sim == man_woman_list()
    for begin, end, actual in MAN_WOMAN_ROWS:
        report(
            "Table 2: Man-Woman",
            {"Start-id": begin, "End-id": end, "Similarity-value": actual},
        )


def test_table3_eventually_moving_train(benchmark, report):
    sim = benchmark(eventually_list, moving_train_list())
    assert sim == expected_eventually_moving_train()
    for begin, end, actual in EVENTUALLY_MOVING_TRAIN_ROWS:
        report(
            "Table 3: eventually Moving-Train",
            {"Start-id": begin, "End-id": end, "Similarity-value": actual},
        )


def test_table4_query1(benchmark, database, report):
    engine = RetrievalEngine()
    video = database.get("making-of-casablanca")
    formula = query1()

    sim = benchmark(
        engine.evaluate_video, formula, video, 2, database
    )
    assert sim == expected_query1()
    measured = {
        (begin, end): actual for begin, end, actual in ranked_entries(sim)
    }
    for begin, end, actual in QUERY1_RANKED_ROWS:
        report(
            "Table 4: Query 1 final result (ranked)",
            {
                "Start": begin,
                "End": end,
                "Paper Sim": actual,
                "Measured Sim": round(measured[(begin, end)], 3),
            },
        )


def test_table4_via_list_combination(benchmark):
    """The §4.1 flow exactly: atomic tables in, combined lists out."""
    mw = man_woman_list()
    mt = moving_train_list()
    result = benchmark(lambda: and_lists(mw, eventually_list(mt)))
    assert result == expected_query1()
