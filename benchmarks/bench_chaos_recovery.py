"""Resilience overhead and recovery latency under injected faults.

Not a paper table — this measures the fault-tolerance layer (ISSUE 3,
DESIGN.md §8).  Two questions:

1. What does an armed :class:`~repro.core.resilience.QueryBudget` cost on
   the hot path when it never fires?  The budget threads cooperative
   ``charge()`` calls through atom scoring and a forced deadline check
   through every engine subformula; the acceptance gate is < 5% overhead
   on the sparse 5k-segment configuration in full mode.

2. How expensive is degraded operation?  With faults injected at the
   index-lookup site, every atom falls back to the naive oracle scorer
   (after the atom-index breaker opens).  The recovered ranking must be
   exactly the fault-free one; the benchmark reports the latency ratio of
   the degraded path.

Emits ``BENCH_chaos.json`` in the current working directory.  Set
``BENCH_QUICK=1`` for a seconds-scale run (CI) with a relaxed overhead
gate — sub-millisecond timings make the 5% gate pure noise there.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.bench.reporting import write_report_json
from repro.core import instrument, resilience
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.testing.faults import FaultSpec, inject

from benchmarks.bench_atom_tables import build_segments

QUICK = bool(os.environ.get("BENCH_QUICK"))
#: Budget-overhead configurations; the gate applies to the sparse-5k row.
CONFIGS = [(500, 0.05)] if QUICK else [(1_000, 0.05), (5_000, 0.05)]
REPEAT = 3 if QUICK else 5
#: Full mode gates the armed-but-idle budget at < 5% overhead; quick mode
#: only smoke-tests that the budget does not multiply the runtime.
OVERHEAD_LIMIT = 0.50 if QUICK else 0.05

N_VIDEOS = 3 if QUICK else 5
RECOVERY_SEGMENTS = 200 if QUICK else 800

QUERY = parse(
    "(exists x . present(x) and type(x) = 'person') and "
    "eventually (exists x . holds_gun(x))"
)

RESULTS_PATH = Path("BENCH_chaos.json")

#: Generous enough that neither limit can fire during the measurement:
#: the point is the cost of carrying the budget, not of tripping it.
GENEROUS = dict(deadline_ms=10**9, max_steps=10**12)


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def _write_payload(key, value):
    payload = (
        json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    )
    payload["quick"] = QUICK
    payload[key] = value
    write_report_json(RESULTS_PATH, payload)


def test_budget_check_overhead(report):
    rng = random.Random(1997)
    results = []
    for n_segments, density in CONFIGS:
        video = flat_video(
            f"budget-{n_segments}", build_segments(n_segments, density, rng)
        )
        engine = RetrievalEngine()

        def bare():
            return engine.evaluate_video(QUERY, video)

        def budgeted():
            budget = resilience.QueryBudget(**GENEROUS)
            with resilience.scope(budget=budget):
                return engine.evaluate_video(QUERY, video)

        bare_seconds, bare_sim = best_of(bare)
        budgeted_seconds, budgeted_sim = best_of(budgeted)
        # An idle budget must never change the answer, only the clock.
        assert budgeted_sim == bare_sim

        overhead = budgeted_seconds / bare_seconds - 1.0
        results.append(
            {
                "n_segments": n_segments,
                "density": density,
                "bare_seconds": bare_seconds,
                "budgeted_seconds": budgeted_seconds,
                "overhead": overhead,
            }
        )
        report(
            "Armed-but-idle query budget overhead (seconds)",
            {
                "Segments": n_segments,
                "Density": f"{density:.0%}",
                "No budget": f"{bare_seconds:.4f}",
                "Budget": f"{budgeted_seconds:.4f}",
                "Overhead": f"{overhead:+.1%}",
            },
        )

    gated = [
        row
        for row in results
        if row["n_segments"] >= (500 if QUICK else 5_000)
    ]
    assert gated, "no gated configuration measured"
    for row in gated:
        assert row["overhead"] <= OVERHEAD_LIMIT, (
            f"budget checks cost {row['overhead']:+.1%} at "
            f"{row['n_segments']} segments "
            f"(limit {OVERHEAD_LIMIT:+.0%})"
        )

    _write_payload(
        "budget_overhead",
        {"limit": OVERHEAD_LIMIT, "configs": results},
    )


def test_fallback_recovery_latency(report):
    rng = random.Random(11)
    database = VideoDatabase()
    for position in range(N_VIDEOS):
        database.add(
            flat_video(
                f"v{position}",
                build_segments(RECOVERY_SEGMENTS, 0.05, rng),
            )
        )
    engine = RetrievalEngine()
    k = 10

    def fault_free():
        return top_k_across_videos(engine, QUERY, database, k=k)

    def degraded():
        with resilience.scope():
            with inject(
                FaultSpec(resilience.SITE_INDEX_LOOKUP), seed=7
            ):
                return top_k_across_videos(engine, QUERY, database, k=k)

    clean_seconds, clean_ranking = best_of(fault_free)
    instrument.reset()
    degraded_seconds, degraded_ranking = best_of(degraded)
    fallbacks = instrument.counters().get(instrument.ATOM_FALLBACK, 0)

    # Recovery must be lossless: the naive oracle scorer answers every
    # atom the broken index cannot, so the ranking is exactly preserved.
    assert list(degraded_ranking) == list(clean_ranking)
    assert fallbacks > 0, "no atom fallback engaged under index faults"

    slowdown = degraded_seconds / clean_seconds
    report(
        "Degraded-path latency: index faults -> naive atom fallback",
        {
            "Videos": N_VIDEOS,
            "Segments/video": RECOVERY_SEGMENTS,
            "Fault-free": f"{clean_seconds:.4f}",
            "Degraded": f"{degraded_seconds:.4f}",
            "Slowdown": f"{slowdown:.1f}x",
            "Fallbacks": fallbacks,
        },
    )
    _write_payload(
        "fallback_recovery",
        {
            "n_videos": N_VIDEOS,
            "segments_per_video": RECOVERY_SEGMENTS,
            "fault_free_seconds": clean_seconds,
            "degraded_seconds": degraded_seconds,
            "slowdown": slowdown,
            "atom_fallbacks": fallbacks,
            "ranking_identical": True,
        },
    )
