"""Shared benchmark fixtures and paper-style result reporting.

Each benchmark registers the rows it measured; at session end the harness
prints the tables in the layout of the paper's §4 so a run can be read
side by side with Tables 1–6 and Figure 2.
"""

import pytest

from repro.bench.reporting import format_table

_collected = {}


def record_row(table_name, row):
    """Benchmarks call this to add one row to a named report table."""
    _collected.setdefault(table_name, []).append(row)


@pytest.fixture
def report():
    return record_row


def pytest_sessionfinish(session, exitstatus):
    if not _collected:
        return
    print("\n")
    print("=" * 72)
    print("Reproduction report (compare with the paper's §4)")
    print("=" * 72)
    for table_name in sorted(_collected):
        rows = _collected[table_name]
        print(f"\n--- {table_name} ---")
        headers = rows[0].keys()
        print(
            format_table(
                list(headers),
                [[row[column] for column in headers] for row in rows],
            )
        )
    print()
