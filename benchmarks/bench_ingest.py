"""Streaming ingestion: incremental index maintenance vs. full rebuild.

Not a paper table — this measures the crash-safe ingest path
(DESIGN.md §15).  Three questions:

1. What does extending a warm picture system by one batch cost versus
   rebuilding it over the whole sequence?  The acceptance gate: at the
   paper's 5k-segment scale, the incremental append must be at least
   5x faster than the rebuild — otherwise "incremental maintenance"
   is a rebuild with extra bookkeeping.
2. What sustained rate does the durable path reach — WAL append, fsync
   commit, and in-place apply per batch?
3. How stale is the index after a commit?  The freshness lag is the
   extra latency of the first query after an append (which pays the
   incremental index extension) over a steady-state repeat query.

Emits ``BENCH_ingest.json`` in the current working directory.  Set
``BENCH_QUICK=1`` for a seconds-scale run (CI) with a relaxed ratio
gate — at a few hundred segments the rebuild is itself only
milliseconds, so the 5x gate would measure allocator noise.
"""

import os
import random
import time

from repro.bench.reporting import write_report_json
from repro.core.engine import RetrievalEngine
from repro.htl import parse
from repro.ingest import initialise
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.workloads.synthetic import random_similarity_list

from benchmarks.bench_atom_tables import build_segments

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_SEGMENTS = 500 if QUICK else 5_000
DENSITY = 0.02
#: One streaming batch: the shots a cut detector emits per arrival.
BATCH = 50
REPEAT = 3 if QUICK else 5
#: Full mode enforces the design gate (>= 5x); quick mode only checks
#: the incremental path is not slower than rebuilding.
SPEEDUP_FLOOR = 1.0 if QUICK else 5.0
#: Batches driven through the durable path for the throughput section.
N_BATCHES = 4 if QUICK else 10

RESULTS_PATH = "BENCH_ingest.json"

QUERY = "exists x . present(x) and type(x) = 'person'"

#: Both tests contribute to one report; the second writes it out.
_RESULTS = {}


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def make_corpus(rng):
    prefix = build_segments(N_SEGMENTS, DENSITY, rng)
    batch = build_segments(BATCH, DENSITY, rng)
    return prefix, batch


def test_incremental_append_vs_rebuild(report):
    rng = random.Random(20260808)
    prefix, batch = make_corpus(rng)

    # best_of cannot time the append: each repeat mutates the video, so
    # the warm prefix system is rebuilt untimed before every measurement.
    incremental_seconds = None
    appended = None
    for __ in range(REPEAT):
        video = flat_video("bench", prefix)
        system = video.root.pictures_at_level(2)
        start = time.perf_counter()
        video.append_segments(batch)
        elapsed = time.perf_counter() - start
        if incremental_seconds is None or elapsed < incremental_seconds:
            incremental_seconds = elapsed
            appended = system

    rebuild_seconds, rebuilt = best_of(
        lambda: PictureRetrievalSystem(prefix + batch)
    )

    # Same answers, not just same speed class.
    assert appended.index.to_dict() == rebuilt.index.to_dict()
    speedup = rebuild_seconds / incremental_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental append is only {speedup:.1f}x faster than a full "
        f"rebuild at {N_SEGMENTS} segments (gate {SPEEDUP_FLOOR:.0f}x): "
        f"{incremental_seconds:.4f}s vs {rebuild_seconds:.4f}s"
    )

    report(
        "Streaming ingestion: index maintenance (seconds)",
        {
            "Segments": N_SEGMENTS,
            "Batch": BATCH,
            "Append (incremental)": f"{incremental_seconds:.4f}",
            "Rebuild (full)": f"{rebuild_seconds:.4f}",
            "Speedup": f"{speedup:.1f}x",
        },
    )
    _RESULTS.update(
        {
            "quick": QUICK,
            "n_segments": N_SEGMENTS,
            "batch": BATCH,
            "density": DENSITY,
            "append_seconds": incremental_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
        }
    )


def test_ingest_while_query_throughput(tmp_path, report):
    rng = random.Random(7)
    prefix, __ = make_corpus(rng)
    database = VideoDatabase()
    database.add(flat_video("live", prefix))
    database.register_atomic(
        "P1", "live", random_similarity_list(len(prefix), rng=rng)
    )
    formula = parse(QUERY)
    engine = RetrievalEngine()

    with initialise(tmp_path / "ingest", database) as ingester:
        video = ingester.database.get("live")
        # Warm the query path before streaming starts.
        engine.evaluate_video(formula, video, database=ingester.database)

        ingested = 0
        append_seconds = 0.0
        fresh_lags = []
        warm_queries = []
        for index in range(N_BATCHES):
            batch = build_segments(BATCH, DENSITY, random.Random(100 + index))
            start = time.perf_counter()
            ingester.append_segments("live", batch)
            ingester.commit()
            append_seconds += time.perf_counter() - start
            ingested += len(batch)

            start = time.perf_counter()
            engine.evaluate_video(
                formula, video, database=ingester.database
            )
            first_query = time.perf_counter() - start
            start = time.perf_counter()
            engine.evaluate_video(
                formula, video, database=ingester.database
            )
            warm_query = time.perf_counter() - start
            fresh_lags.append(max(0.0, first_query - warm_query))
            warm_queries.append(warm_query)

        assert len(video.nodes_at_level(2)) == len(prefix) + ingested

    throughput = ingested / append_seconds
    freshness_lag = sum(fresh_lags) / len(fresh_lags)
    warm_query_seconds = sum(warm_queries) / len(warm_queries)

    report(
        "Streaming ingestion: durable path",
        {
            "Segments/s (WAL+apply+fsync)": f"{throughput:.0f}",
            "Freshness lag (s)": f"{freshness_lag:.4f}",
            "Warm query (s)": f"{warm_query_seconds:.4f}",
            "Batches": N_BATCHES,
        },
    )
    _RESULTS.update(
        {
            "ingest_segments_per_second": throughput,
            "freshness_lag_seconds": freshness_lag,
            "warm_query_seconds": warm_query_seconds,
            "n_batches": N_BATCHES,
        }
    )
    write_report_json(RESULTS_PATH, dict(_RESULTS))
