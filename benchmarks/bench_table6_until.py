"""Table 6 of the paper: performance of ``P1 until P2``, direct vs SQL.

Same workloads and presentation as Table 5 (see
``bench_table5_conjunction.py``); paper reference: direct 1.46/7.35/14.97
seconds vs SQL 42.14/99.72/134.63 seconds at 10k/50k/100k shots.
"""

import pytest

from repro.bench.harness import run_direct, run_sql
from repro.htl import parse
from repro.workloads.synthetic import PAPER_SIZES, perf_workload

PAPER_TABLE6 = {
    10_000: (1.46, 42.14),
    50_000: (7.35, 99.72),
    100_000: (14.97, 134.63),
}

FORMULA = parse("$P1 until $P2")


@pytest.fixture(scope="module", params=PAPER_SIZES)
def workload(request):
    return perf_workload(request.param)


def test_direct_until(benchmark, workload, report):
    benchmark.pedantic(
        lambda: run_direct(FORMULA, workload.lists, repeat=1).result,
        rounds=5,
        iterations=1,
    )
    direct = run_direct(FORMULA, workload.lists)
    sql = run_sql(FORMULA, workload.lists, workload.size)
    assert direct.result == sql.result, "systems disagree"
    paper_direct, paper_sql = PAPER_TABLE6[workload.size]
    report(
        "Table 6: Perf results for P1 UNTIL P2 (seconds)",
        {
            "Size": workload.size,
            "Direct": f"{direct.seconds:.4f}",
            "SQL-based": f"{sql.seconds:.4f}",
            "Ratio": f"{sql.seconds / direct.seconds:.1f}x",
            "Paper Direct": paper_direct,
            "Paper SQL": paper_sql,
            "Paper Ratio": f"{paper_sql / paper_direct:.1f}x",
        },
    )


def test_sql_until(benchmark, workload):
    def run():
        return run_sql(FORMULA, workload.lists, workload.size).result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.maximum == pytest.approx(20.0)
