"""Cost-based query planner: work saved and plan-cache effectiveness.

Not a paper table — this measures the statistics-driven planner
(:mod:`repro.core.planner`, ISSUE 7, DESIGN.md §13) on a
skewed-selectivity corpus: a rare object type appears in 2 of 16 videos
while a common type appears everywhere.  The benchmark query conjoins
an everywhere-true atom with a rare-type atom whose *structural* costs
tie exactly — only posting-list statistics can tell them apart — so the
static optimizer keeps the written order while the planner evaluates
the selective side first and short-circuits the expensive side wherever
the rare type is absent.

Three claims are gated:

* **Work** — the planned engine scores *strictly fewer* segments than
  the structural-order engine (exact counts from the per-video picture
  systems, not timings).
* **Plan-cache warmth** — a warm repeat of the corpus sweep runs zero
  additional support probes and builds zero additional plans: planning
  cost is paid once per (formula, index-shape), not per query.
* **Identity** — the planned ranking is byte-identical to the
  structural-order engine's ranking, row for row.

Emits ``BENCH_planner.json``.  Set ``BENCH_QUICK=1`` for a
seconds-scale run.
"""

import os
import time
from pathlib import Path

import pytest

from repro.bench.reporting import write_report_json
from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_VIDEOS = 8 if QUICK else 16
#: Per-video segments; the full corpus totals ~5k segments.
N_SEGMENTS = 125 if QUICK else 320
RARE_VIDEOS = 2  #: videos that contain the rare type at all
RARE_PER_VIDEO = 8  #: rare-type segments within those videos
K = 10
REPEAT = 3 if QUICK else 5

#: Both conjuncts are (1 free var, 1 temporal op, size 2) — a structural
#: tie that only index statistics can break.
FORMULA = parse(
    "exists x . ((eventually present(x)) and (eventually type(x) = 'person'))"
)

RESULTS_PATH = Path("BENCH_planner.json")


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def skewed_corpus():
    """16 videos, rare type 'person' in the first 2 only.

    Every segment carries a distinct ``height`` attribute so the
    fingerprint memo cannot collapse the corpus into a handful of
    representatives — scored-segment counts then reflect real sweep
    work, not memo hits.
    """
    database = VideoDatabase()
    for position in range(N_VIDEOS):
        segments = []
        for index in range(N_SEGMENTS):
            objects = [
                make_object(
                    f"plane{index % 37}", "plane", height=float(index)
                )
            ]
            if position < RARE_VIDEOS and index % (
                N_SEGMENTS // RARE_PER_VIDEO
            ) == 0:
                objects.append(
                    make_object(f"person{index}", "person", height=170.0)
                )
            segments.append(SegmentMetadata(objects=objects))
        database.add(flat_video(f"vid{position:03d}", segments))
    return database


def corpus_segments_scored(database):
    """Exact scored-segment count summed over every video's pictures."""
    return sum(
        video.root.pictures_at_level(2).stats.segments_scored
        for video in database.videos()
    )


def _sweep(engine, database):
    return top_k_across_videos(
        engine, FORMULA, database, K, parallelism=None, prune=False
    )


def test_planner_work_cache_and_identity(report):
    # Separate databases per mode: picture-system counters are cumulative
    # per video, so each engine gets its own untouched corpus.
    planned_db = skewed_corpus()
    structural_db = skewed_corpus()

    planned_engine = RetrievalEngine()
    structural_engine = RetrievalEngine(EngineConfig(plan=False))

    planned_seconds, planned = best_of(
        lambda: _sweep(planned_engine, planned_db), repeat=1
    )
    structural_seconds, structural = best_of(
        lambda: _sweep(structural_engine, structural_db), repeat=1
    )

    # -- identity gate ---------------------------------------------------
    planned_rows = [
        (r.video, r.segment_id, r.actual, r.maximum) for r in planned
    ]
    structural_rows = [
        (r.video, r.segment_id, r.actual, r.maximum) for r in structural
    ]
    assert planned_rows == structural_rows, (
        "planned ranking diverged from structural-order ranking"
    )

    # -- work gate -------------------------------------------------------
    planned_scored = corpus_segments_scored(planned_db)
    structural_scored = corpus_segments_scored(structural_db)
    assert planned_scored < structural_scored, (
        f"planner scored {planned_scored} segments, structural order "
        f"{structural_scored} — statistics-driven ordering saved nothing"
    )

    # -- plan-cache warmth gate ------------------------------------------
    # One settle sweep first: the cold run's observed latencies feed the
    # adaptive loop, which may retire the initial plans once to
    # recalibrate the cost model's time unit (that one replan is the
    # design, not a cache failure).  After settling, a warm sweep must be
    # pure cache hits: no support probes, no plan builds.
    _sweep(planned_engine, planned_db)
    stats_after_cold = planned_engine.planner.stats
    warm_seconds, warm = best_of(
        lambda: _sweep(planned_engine, planned_db), repeat=1
    )
    stats_after_warm = planned_engine.planner.stats
    assert [
        (r.video, r.segment_id, r.actual, r.maximum) for r in warm
    ] == planned_rows
    assert (
        stats_after_warm.support_probes == stats_after_cold.support_probes
    ), "warm queries re-ran support analysis despite the plan cache"
    assert (
        stats_after_warm.plans_built == stats_after_cold.plans_built
    ), "warm queries rebuilt plans despite the plan cache"

    # Timed repeats for the report (cold numbers above are exact-count
    # gates; timings here are best-of and informational).
    total = N_VIDEOS * N_SEGMENTS
    saved = 1 - planned_scored / structural_scored
    report(
        "Cost-based planner vs structural order (segments scored)",
        {
            "Corpus": f"{N_VIDEOS}x{N_SEGMENTS} "
            f"(rare type in {RARE_VIDEOS} videos)",
            "Total": total,
            "Structural": structural_scored,
            "Planned": planned_scored,
            "Saved": f"{saved:.0%}",
            "Plans built": stats_after_warm.plans_built,
            "Cache hits": stats_after_warm.cache_hits,
        },
    )
    report(
        "Cost-based planner timings (seconds, single sweep)",
        {
            "Structural": f"{structural_seconds:.4f}",
            "Planned cold": f"{planned_seconds:.4f}",
            "Planned warm": f"{warm_seconds:.4f}",
            "Support probes": stats_after_warm.support_probes,
            "Skipped subformulas": stats_after_warm.skipped_subformulas,
        },
    )

    write_report_json(
        RESULTS_PATH,
        {
            "quick": QUICK,
            "n_videos": N_VIDEOS,
            "n_segments_per_video": N_SEGMENTS,
            "total_segments": total,
            "rare_videos": RARE_VIDEOS,
            "k": K,
            "formula": str(FORMULA),
            "structural_scored": structural_scored,
            "planned_scored": planned_scored,
            "scored_saved_fraction": saved,
            "structural_seconds": structural_seconds,
            "planned_cold_seconds": planned_seconds,
            "planned_warm_seconds": warm_seconds,
            "plans_built": stats_after_warm.plans_built,
            "cache_hits": stats_after_warm.cache_hits,
            "replans": stats_after_warm.replans,
            "support_probes": stats_after_warm.support_probes,
            "skipped_subformulas": stats_after_warm.skipped_subformulas,
            "work_gate": "planned_scored < structural_scored",
            "warm_gate": (
                "warm sweep adds no support probes and builds no plans"
            ),
            "rankings_identical": True,
        },
    )
