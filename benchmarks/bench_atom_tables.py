"""Atom-table construction: naive full scan vs. index-driven evaluation.

Not a paper table — this measures the picture-retrieval substrate rewrite
(ISSUE 2): support-set analysis over the meta-data posting lists, baseline
runs emitted directly in compressed form, fingerprint-memoized scoring and
binding batching (DESIGN.md §7).  The workload sweeps segment count and
object density (the fraction of segments each object appears in); the
paper's own experiments assume the picture layer answers atomic queries
"employing indices on the meta-data", which is precisely the path under
test.

Emits ``BENCH_pictures.json`` in the current working directory.  Set
``BENCH_QUICK=1`` for a seconds-scale run (CI); the committed numbers come
from the full mode, whose acceptance gate is a >= 10x speedup on the
sparse 5k-segment configurations.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.bench import stages
from repro.bench.reporting import write_report_json
from repro.core.engine import EngineConfig, RetrievalEngine
from repro.htl import parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import Relationship, SegmentMetadata, make_object
from repro.pictures.retrieval import PictureRetrievalSystem

QUICK = bool(os.environ.get("BENCH_QUICK"))
#: (n_segments, density) configurations; density = fraction of segments
#: each object appears in.
CONFIGS = (
    [(500, 0.05), (500, 0.50)]
    if QUICK
    else [(1_000, 0.05), (5_000, 0.02), (5_000, 0.05), (5_000, 0.50)]
)
N_OBJECTS = 6
REPEAT = 2 if QUICK else 3
#: The acceptance gate applies to sparse (<10%) configurations at >= 5k
#: segments in full mode; quick mode uses a soft smoke threshold.
REQUIRED_SPEEDUP = 2.0 if QUICK else 10.0

ATOMS = [
    ("open-type", parse("present(x) and type(x) = 'person'")),
    ("closed-exists", parse("exists x . present(x) and holds_gun(x)")),
    ("negation", parse("exists x . not present(x)")),
]

RESULTS_PATH = Path("BENCH_pictures.json")


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def build_segments(n_segments, density, rng):
    """Sparse synthetic meta-data: each object in ~density of the segments."""
    per_segment = [
        {"objects": [], "relationships": [], "attributes": {}}
        for __ in range(n_segments)
    ]
    appearances = max(1, int(n_segments * density))
    for position in range(N_OBJECTS):
        object_id = f"o{position}"
        type_name = "person" if position % 2 else "plane"
        for segment_index in rng.sample(range(n_segments), appearances):
            slot = per_segment[segment_index]
            slot["objects"].append(
                make_object(
                    object_id,
                    type_name,
                    confidence=rng.choice([1.0, 0.5]),
                    height=rng.choice([50, 100, 300]),
                )
            )
            if rng.random() < 0.3:
                slot["relationships"].append(
                    Relationship("holds_gun", (object_id,), confidence=1.0)
                )
    for segment_index in rng.sample(
        range(n_segments), max(1, int(n_segments * density))
    ):
        per_segment[segment_index]["attributes"]["kind"] = "battle"
    return [
        SegmentMetadata(
            attributes=slot["attributes"],
            objects=slot["objects"],
            relationships=slot["relationships"],
        )
        for slot in per_segment
    ]


def assert_tables_identical(indexed, naive):
    assert indexed.object_vars == naive.object_vars
    assert indexed.attr_vars == naive.attr_vars
    assert len(indexed.rows) == len(naive.rows)
    for mine, theirs in zip(indexed.rows, naive.rows):
        assert mine.objects == theirs.objects
        assert mine.sim == theirs.sim


def test_atom_table_construction(report):
    rng = random.Random(1997)
    results = []
    for n_segments, density in CONFIGS:
        segments = build_segments(n_segments, density, rng)
        build_start = time.perf_counter()
        system = PictureRetrievalSystem(segments)
        index_build_seconds = time.perf_counter() - build_start

        def all_tables(use_index):
            return [
                system.similarity_table(atom, use_index=use_index)
                for __, atom in ATOMS
            ]

        naive_seconds, naive_tables = best_of(lambda: all_tables(False))
        system.stats.reset()
        indexed_seconds, indexed_tables = best_of(lambda: all_tables(True))
        for indexed, naive in zip(indexed_tables, naive_tables):
            assert_tables_identical(indexed, naive)

        speedup = naive_seconds / indexed_seconds
        stats = system.stats
        results.append(
            {
                "n_segments": n_segments,
                "density": density,
                "naive_seconds": naive_seconds,
                "indexed_seconds": indexed_seconds,
                "speedup": speedup,
                "index_build_seconds": index_build_seconds,
                "segments_scored": stats.segments_scored,
                "fingerprint_hits": stats.fingerprint_hits,
                "candidate_segments": stats.candidate_segments,
                "dense_bindings": stats.dense_bindings,
                "tables_identical": True,
            }
        )
        report(
            "Atom-table construction: naive scan vs index-driven (seconds)",
            {
                "Segments": n_segments,
                "Density": f"{density:.0%}",
                "Naive": f"{naive_seconds:.4f}",
                "Indexed": f"{indexed_seconds:.4f}",
                "Speedup": f"{speedup:.1f}x",
                "Scored": stats.segments_scored,
                "Memo hits": stats.fingerprint_hits,
            },
        )

    gated = [
        row
        for row in results
        if row["density"] < 0.10
        and row["n_segments"] >= (500 if QUICK else 5_000)
    ]
    assert gated, "no sparse configuration measured"
    for row in gated:
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"index-driven path only {row['speedup']:.1f}x faster at "
            f"{row['n_segments']} segments / {row['density']:.0%} density "
            f"(required {REQUIRED_SPEEDUP}x)"
        )

    # Dense-regime gate: near-universal postings trip the density cutoff
    # (the support analysis demotes them to a direct sweep), so the
    # indexed path must never regress below the naive scan.
    dense = [row for row in results if row["density"] >= 0.50]
    assert dense, "no dense configuration measured"
    for row in dense:
        assert row["dense_bindings"] > 0, (
            f"density cutoff never engaged at {row['n_segments']} "
            f"segments / {row['density']:.0%} density"
        )
        assert row["speedup"] >= 1.0, (
            f"dense regime regressed below naive: "
            f"{row['speedup']:.2f}x at {row['n_segments']} segments / "
            f"{row['density']:.0%} density"
        )

    payload = {
        "quick": QUICK,
        "n_objects": N_OBJECTS,
        "atoms": [name for name, __ in ATOMS],
        "required_speedup_sparse": REQUIRED_SPEEDUP,
        "configs": results,
    }
    write_report_json(RESULTS_PATH, payload)


def test_stage_breakdown(report):
    """Per-stage attribution of an end-to-end query via repro.bench.stages."""
    rng = random.Random(42)
    n_segments = 300 if QUICK else 2_000
    segments = build_segments(n_segments, 0.05, rng)
    video = flat_video("stage-bench", segments)
    query = parse(
        "(exists x . present(x) and type(x) = 'person') and "
        "eventually (exists x . holds_gun(x))"
    )

    breakdown = {}
    for label, config in (
        ("indexed", EngineConfig()),
        ("naive", EngineConfig(naive_atoms=True)),
    ):
        stages.enable()
        try:
            RetrievalEngine(config).evaluate_video(query, video)
        finally:
            stages.disable()
        totals = stages.totals()
        breakdown[label] = {
            name: total.seconds for name, total in totals.items()
        }
        report(
            f"Per-stage timing, {label} atom path (seconds)",
            {
                "Stage": stages.ATOM_SCORING,
                "Seconds": f"{totals[stages.ATOM_SCORING].seconds:.4f}",
                "Calls": totals[stages.ATOM_SCORING].calls,
            },
        )
        report(
            f"Per-stage timing, {label} atom path (seconds)",
            {
                "Stage": stages.LIST_ALGEBRA,
                "Seconds": f"{totals[stages.LIST_ALGEBRA].seconds:.4f}",
                "Calls": totals[stages.LIST_ALGEBRA].calls,
            },
        )

    assert stages.ATOM_SCORING in breakdown["indexed"]
    assert stages.LIST_ALGEBRA in breakdown["indexed"]
    if RESULTS_PATH.exists():
        payload = json.loads(RESULTS_PATH.read_text())
        payload["stage_breakdown"] = breakdown
        write_report_json(RESULTS_PATH, payload)
