"""Serving under overload: SLA compliance, priority shedding, conservation.

Not a paper table — this drives the concurrent retrieval service
(:mod:`repro.serve`, DESIGN.md §14) with a closed-loop load generator
and gates the three claims the serving layer makes:

* **Identity** — a served, non-degraded ranking is byte-identical to
  the direct (unserved) ``top_k_across_videos`` scan.
* **SLA under overload** — with twice as many closed-loop clients as
  pooled workers, the p99 latency of *completed interactive* requests
  stays inside the interactive deadline.  Strict-priority dispatch is
  what buys this: interactive work overtakes the standard/batch
  backlog instead of queueing behind it.
* **Shedding is priority-ordered** — when a burst overruns the queue
  capacity, every shed request is batch-class.  Interactive and
  standard work is never sacrificed to make room, and the conservation
  ledger still balances (shed requests terminate with a retry hint;
  nothing is silently dropped).

Deadlines are anchored to a measured serial service time rather than
wall-clock constants, so the gates hold on fast and slow machines
alike.  Emits ``BENCH_serve.json``.  Set ``BENCH_QUICK=1`` for a
seconds-scale run.
"""

import os
import random
import threading
import time
from pathlib import Path

import pytest

from repro.bench.reporting import write_report_json
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.errors import ServeRejected
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata
from repro.serve import EnginePool, RetrievalServer, SLAClass
from repro.serve.request import (
    STATUS_COMPLETED,
    STATUS_SHED,
    QueryRequest,
)
from repro.workloads.synthetic import random_similarity_list

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_VIDEOS = 4 if QUICK else 8
N_SEGMENTS = 60 if QUICK else 200
K = 10
FORMULA_TEXT = "$P1 and $P2"
FORMULA = parse(FORMULA_TEXT)
N_WORKERS = 2
#: Closed-loop clients per worker — 2x is the overload the gate demands.
LOAD_FACTOR = 2
REQUESTS_PER_CLIENT = 6 if QUICK else 16
#: Interactive deadline as a multiple of the measured serial service
#: time.  Strict priority means an interactive request waits for at
#: most the jobs already *running* plus its own class's queue, so this
#: headroom absorbs scheduler jitter without making the SLA vacuous.
INTERACTIVE_HEADROOM = 25.0

RESULTS_PATH = Path("BENCH_serve.json")

CLASS_CYCLE = ("interactive", "standard", "batch")


def graded_corpus(seed=1997):
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(N_VIDEOS):
        video = flat_video(
            f"vid{position:03d}",
            [SegmentMetadata() for __ in range(N_SEGMENTS)],
        )
        database.add(video)
        for name in ("P1", "P2"):
            database.register_atomic(
                name,
                video.name,
                random_similarity_list(
                    N_SEGMENTS,
                    satisfy_fraction=0.2,
                    maximum=2.0 + 2.5 * position,
                    rng=rng,
                ),
            )
    return database


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[position]


def measured_classes(serial_ms):
    """An SLA ladder anchored to the measured serial service time."""
    interactive_ms = max(100.0, INTERACTIVE_HEADROOM * serial_ms)
    return {
        "interactive": SLAClass(
            "interactive", deadline_ms=interactive_ms, queue_limit=32,
            priority=2,
        ),
        "standard": SLAClass(
            "standard", deadline_ms=4.0 * interactive_ms, queue_limit=64,
            priority=1,
        ),
        "batch": SLAClass(
            "batch", deadline_ms=12.0 * interactive_ms, queue_limit=128,
            priority=0,
        ),
    }


def closed_loop(server, n_clients, requests_per_client):
    """Each client submits its next request when the previous finishes."""
    results = []
    rejected = []
    lock = threading.Lock()

    def client(offset):
        for position in range(requests_per_client):
            sla = CLASS_CYCLE[(offset + position) % len(CLASS_CYCLE)]
            try:
                result = server.query(FORMULA_TEXT, K, sla=sla)
            except ServeRejected as rejection:
                with lock:
                    rejected.append((sla, rejection.reason))
                continue
            with lock:
                results.append(result)

    threads = [
        threading.Thread(target=client, args=(offset,))
        for offset in range(n_clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return results, rejected, elapsed


def shed_burst(corpus, classes):
    """Overrun a tiny queue with batch work, then demand interactive room.

    Returns every ticket's terminal result plus the closing stats; the
    caller checks that shedding happened, hit only batch, and balanced.
    """
    pool = EnginePool.from_database(corpus, N_WORKERS)
    capacity = 4
    server = RetrievalServer(pool, classes=classes, capacity=capacity)
    tickets = []
    rejected = 0
    with server:
        for __ in range(3 * capacity):
            try:
                tickets.append(
                    server.submit(QueryRequest(FORMULA_TEXT, K, sla="batch"))
                )
            except ServeRejected:
                rejected += 1
        for __ in range(capacity):
            try:
                tickets.append(
                    server.submit(
                        QueryRequest(FORMULA_TEXT, K, sla="interactive")
                    )
                )
            except ServeRejected:
                rejected += 1
        stats = server.close()
    return [ticket.result(60.0) for ticket in tickets], rejected, stats


@pytest.fixture(scope="module")
def corpus():
    return graded_corpus()


def test_serve_overload_sla_and_shedding(corpus, report):
    engine = RetrievalEngine()
    # -- serial baseline: the reference ranking and the SLA anchor ------
    serial_ms = None
    reference = None
    for __ in range(3):
        start = time.perf_counter()
        reference = top_k_across_videos(
            engine, FORMULA, corpus, K, parallelism=None, prune=False
        )
        elapsed = (time.perf_counter() - start) * 1_000.0
        if serial_ms is None or elapsed < serial_ms:
            serial_ms = elapsed
    expected = [(r.video, r.segment_id, r.actual, r.maximum) for r in reference]
    classes = measured_classes(serial_ms)
    interactive_deadline = classes["interactive"].deadline_ms

    # -- overload phase: 2x closed-loop clients vs pooled workers -------
    pool = EnginePool.from_database(corpus, N_WORKERS)
    server = RetrievalServer(pool, classes=classes)
    with server:
        results, rejected, elapsed_s = closed_loop(
            server, N_WORKERS * LOAD_FACTOR, REQUESTS_PER_CLIENT
        )
        overload_stats = server.close()
    assert overload_stats.conserved, "overload phase ledger out of balance"

    by_class = {name: [] for name in CLASS_CYCLE}
    for result in results:
        by_class[result.sla].append(result)
    interactive_done = [
        r for r in by_class["interactive"] if r.status == STATUS_COMPLETED
    ]
    assert interactive_done, "no interactive request completed under load"
    # Identity: a served, non-degraded ranking is the direct scan's.
    for result in interactive_done:
        if not result.degraded:
            served = [
                (r.video, r.segment_id, r.actual, r.maximum)
                for r in result.topk
            ]
            assert served == expected, "served ranking diverged from direct"
    interactive_p99 = percentile(
        [r.total_ms for r in interactive_done], 0.99
    )
    assert interactive_p99 <= interactive_deadline, (
        f"interactive p99 {interactive_p99:.1f}ms blew the "
        f"{interactive_deadline:.1f}ms deadline under {LOAD_FACTOR}x load"
    )
    # Under overload nothing shed may outrank batch.
    for result in results:
        if result.status == STATUS_SHED:
            assert result.sla == "batch", (
                f"{result.sla} request shed under overload"
            )

    # -- shed phase: burst past a tiny capacity, watch who pays ---------
    shed_results, shed_rejected, shed_stats = shed_burst(corpus, classes)
    assert shed_stats.conserved, "shed phase ledger out of balance"
    shed = [r for r in shed_results if r.status == STATUS_SHED]
    assert shed, "capacity burst shed nothing — eviction path never ran"
    assert all(r.sla == "batch" for r in shed), (
        "shedding was not confined to batch"
    )
    for result in shed:
        assert result.retry_after_ms is not None
        assert result.retry_after_ms >= 0.0

    # -- report ---------------------------------------------------------
    latencies = {
        name: [r.total_ms for r in rs if r.status == STATUS_COMPLETED]
        for name, rs in by_class.items()
    }
    for name in CLASS_CYCLE:
        done = latencies[name]
        report(
            "Serving under 2x overload (per-class latency, ms)",
            {
                "Class": name,
                "Deadline": f"{classes[name].deadline_ms:.0f}",
                "Completed": len(done),
                "p50": f"{percentile(done, 0.50):.1f}",
                "p95": f"{percentile(done, 0.95):.1f}",
                "p99": f"{percentile(done, 0.99):.1f}",
                "Within SLA": (
                    "yes"
                    if percentile(done, 0.99) <= classes[name].deadline_ms
                    else "no"
                ),
            },
        )
    report(
        "Serving shed burst (capacity 4, 12 batch + 4 interactive)",
        {
            "Shed": len(shed),
            "Shed classes": ",".join(sorted({r.sla for r in shed})) or "-",
            "Rejected": shed_rejected,
            "Completed": sum(
                1 for r in shed_results if r.status == STATUS_COMPLETED
            ),
            "Conserved": "yes" if shed_stats.conserved else "NO",
        },
    )

    write_report_json(
        RESULTS_PATH,
        {
            "quick": QUICK,
            "n_videos": N_VIDEOS,
            "n_segments_per_video": N_SEGMENTS,
            "k": K,
            "n_workers": N_WORKERS,
            "load_factor": LOAD_FACTOR,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "serial_ms": serial_ms,
            "deadlines_ms": {
                name: sla.deadline_ms for name, sla in classes.items()
            },
            "overload": {
                "elapsed_s": elapsed_s,
                "served": len(results),
                "rejected": len(rejected),
                "rejected_reasons": sorted({reason for __, reason in rejected}),
                "stats": overload_stats.to_payload(),
                "latency_ms": {
                    name: {
                        "completed": len(samples),
                        "p50": percentile(samples, 0.50),
                        "p95": percentile(samples, 0.95),
                        "p99": percentile(samples, 0.99),
                    }
                    for name, samples in latencies.items()
                },
            },
            "shed_burst": {
                "shed": len(shed),
                "shed_classes": sorted({r.sla for r in shed}),
                "rejected": shed_rejected,
                "stats": shed_stats.to_payload(),
            },
            "gates": {
                "identity": "served non-degraded ranking == direct scan",
                "sla": (
                    "interactive p99 <= interactive deadline at "
                    f"{LOAD_FACTOR}x load"
                ),
                "shedding": "shed requests are batch-class only",
                "conservation": "both phases' ledgers balance",
            },
        },
    )
