"""Table 5 of the paper: performance of ``P1 ∧ P2``, direct vs SQL (§4.2).

Randomly generated data at the paper's sizes (10 000 / 50 000 / 100 000
shots, ~10% of shots satisfying each predicate).  Absolute times are not
comparable to 1997 Sybase-on-SUN numbers; the reproduced *shape* is:
the direct method wins by an order of magnitude and grows linearly with
size, while the SQL-based method pays per-row materialisation overheads
(see EXPERIMENTS.md).
"""

import pytest

from repro.bench.harness import run_direct, run_sql
from repro.htl import parse
from repro.workloads.synthetic import PAPER_SIZES, perf_workload

#: Paper Table 5 reference values, seconds on 1997 hardware.
PAPER_TABLE5 = {10_000: (1.49, 13.37), 50_000: (7.40, 42.61), 100_000: (14.50, 78.94)}

FORMULA = parse("$P1 and $P2")


@pytest.fixture(scope="module", params=PAPER_SIZES)
def workload(request):
    return perf_workload(request.param)


def test_direct_conjunction(benchmark, workload, report):
    measurement = benchmark.pedantic(
        lambda: run_direct(FORMULA, workload.lists, repeat=1).result,
        rounds=5,
        iterations=1,
    )
    direct = run_direct(FORMULA, workload.lists)
    sql = run_sql(FORMULA, workload.lists, workload.size)
    assert direct.result == sql.result, "systems disagree"
    paper_direct, paper_sql = PAPER_TABLE5[workload.size]
    report(
        "Table 5: Perf results for P1 AND P2 (seconds)",
        {
            "Size": workload.size,
            "Direct": f"{direct.seconds:.4f}",
            "SQL-based": f"{sql.seconds:.4f}",
            "Ratio": f"{sql.seconds / direct.seconds:.1f}x",
            "Paper Direct": paper_direct,
            "Paper SQL": paper_sql,
            "Paper Ratio": f"{paper_sql / paper_direct:.1f}x",
        },
    )


def test_sql_conjunction(benchmark, workload):
    system_result = {}

    def run():
        measurement = run_sql(FORMULA, workload.lists, workload.size)
        system_result["value"] = measurement.result
        return measurement.result

    benchmark.pedantic(run, rounds=2, iterations=1)
    assert system_result["value"].maximum == pytest.approx(40.0)
