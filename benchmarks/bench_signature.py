"""Content-signature retrieval: indexed sweep vs. brute-force oracle.

The ``looks_like`` backend (DESIGN.md §16) claims two things: its indexed
sweep returns rankings *byte-identical* to the definitional brute-force
scorer, and it is faster on realistic corpora.  The brute-force oracle
here deliberately computes the full blended similarity (histogram L1 +
SSIM pass) for every window of every segment — no L1-bound short-circuit,
no profile/fingerprint memoisation.  The production path shares the same
per-window float recipe (:func:`repro.pictures.signature.window_similarity`),
so equality is exact, not approximate; the speedup comes from the
admissible bound skipping SSIM passes and the sweep memoising repeated
shot signatures (recurring shots are the norm in broadcast footage —
see the ``clips`` workload).

Emits ``BENCH_signature.json`` in the current working directory.  Set
``BENCH_QUICK=1`` for a seconds-scale run (CI).
"""

import os
import random
import time
from pathlib import Path

from repro.bench.reporting import write_report_json
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.model.metadata import SegmentMetadata
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.pictures.signature import (
    looks_like_atom,
    window_similarity,
)

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_BINS = 16
#: (n_segments, distinct-signature bases) configurations: recurring shot
#: signatures are what the profile memo collapses.
CONFIGS = [(400, 40), (400, 400)] if QUICK else [(4_000, 100), (4_000, 4_000)]
N_WINDOWS = 4
THETA = 0.9
REPEAT = 2 if QUICK else 3
#: Acceptance floor on the recurring-signature configuration (the first
#: of each pair above); the all-distinct row is informational.
REQUIRED_SPEEDUP = 1.5 if QUICK else 2.0

RESULTS_PATH = Path("BENCH_signature.json")


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def random_signature(rng):
    weights = [rng.random() ** 2 for __ in range(N_BINS)]
    total = sum(weights)
    return tuple(weight / total for weight in weights)


def build_segments(n_segments, n_bases, rng):
    """Signatures drawn from ``n_bases`` distinct vectors, round-robin —
    ``n_bases == n_segments`` means every signature is unique."""
    bases = [random_signature(rng) for __ in range(n_bases)]
    return [
        SegmentMetadata(
            attributes={"shot": position}, signature=bases[position % n_bases]
        )
        for position in range(n_segments)
    ]


def oracle_list(atom, segments):
    """The definitional scorer: full blended similarity, every window,
    every segment — no bound, no memo."""
    values = {}
    for segment_id, segment in enumerate(segments, start=1):
        if segment.signature is None:
            continue
        best = 0.0
        for window in atom.clip:
            similarity = window_similarity(segment.signature, window)
            if similarity > best:
                best = similarity
        actual = best if best >= atom.theta else 0.0
        if actual > SIM_EPS:
            values[segment_id] = actual
    return SimilarityList.from_segment_values(values, 1.0)


def test_signature_retrieval(report):
    rng = random.Random(2026)
    results = []
    for n_segments, n_bases in CONFIGS:
        segments = build_segments(n_segments, n_bases, rng)
        system = PictureRetrievalSystem(segments)
        # The clip: one stored signature (guaranteed hits at recurrences)
        # plus fresh windows that miss nearly everything — the regime the
        # L1 bound prunes.
        clip = [segments[0].signature] + [
            random_signature(rng) for __ in range(N_WINDOWS - 1)
        ]
        atom = looks_like_atom(clip, THETA, name="probe")

        oracle_seconds, oracle = best_of(lambda: oracle_list(atom, segments))
        system.stats.reset()
        indexed_seconds, indexed = best_of(
            lambda: system.similarity_list(atom, use_index=True)
        )
        assert indexed == oracle, (
            f"indexed ranking diverged from the brute-force oracle at "
            f"{n_segments} segments / {n_bases} distinct signatures"
        )

        speedup = oracle_seconds / indexed_seconds
        stats = system.stats
        results.append(
            {
                "n_segments": n_segments,
                "distinct_signatures": n_bases,
                "oracle_seconds": oracle_seconds,
                "indexed_seconds": indexed_seconds,
                "speedup": speedup,
                "segments_scored": stats.segments_scored,
                "fingerprint_hits": stats.fingerprint_hits,
                "matches": len(indexed),
                "identical": True,
            }
        )
        report(
            "Signature retrieval: brute-force oracle vs indexed (seconds)",
            {
                "Segments": n_segments,
                "Distinct": n_bases,
                "Oracle": f"{oracle_seconds:.4f}",
                "Indexed": f"{indexed_seconds:.4f}",
                "Speedup": f"{speedup:.1f}x",
                "Scored": stats.segments_scored,
                "Memo hits": stats.fingerprint_hits,
            },
        )

    recurring = [
        row
        for row in results
        if row["distinct_signatures"] < row["n_segments"]
    ]
    assert recurring, "no recurring-signature configuration measured"
    for row in recurring:
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"signature sweep only {row['speedup']:.1f}x over the oracle "
            f"at {row['n_segments']} segments / "
            f"{row['distinct_signatures']} distinct signatures "
            f"(required {REQUIRED_SPEEDUP}x)"
        )

    payload = {
        "quick": QUICK,
        "n_windows": N_WINDOWS,
        "theta": THETA,
        "required_speedup_recurring": REQUIRED_SPEEDUP,
        "configs": results,
    }
    write_report_json(RESULTS_PATH, payload)
