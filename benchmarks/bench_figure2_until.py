"""Figure 2 of the paper: the UNTIL algorithm's worked example.

Regenerates the output table from the figure's input lists (asserting the
exact entries) and benchmarks the backward merge on that input and on a
stretched version of it.
"""

import pytest

from repro.core.intervals import Interval
from repro.core.ops import until_lists, until_runs
from repro.core.simlist import SimilarityList

L1_RUNS = [Interval(25, 100), Interval(200, 250)]
L1_LIST = SimilarityList.from_entries(
    [((25, 100), 18.0), ((200, 250), 18.0)], maximum=20.0
)
L2 = SimilarityList.from_entries(
    [
        ((10, 50), 10.0),
        ((55, 60), 15.0),
        ((90, 110), 12.0),
        ((125, 175), 10.0),
    ],
    maximum=20.0,
)
EXPECTED = SimilarityList.from_entries(
    [
        ((10, 24), 10.0),
        ((25, 60), 15.0),
        ((61, 110), 12.0),
        ((125, 175), 10.0),
    ],
    maximum=20.0,
)


def test_figure2_output(benchmark, report):
    result = benchmark(until_runs, L1_RUNS, L2)
    assert result == EXPECTED
    for entry in result:
        report(
            "Figure 2: until example output",
            {
                "Interval": f"[{entry.begin} {entry.end}]",
                "Similarity": f"({entry.actual:g}, 20)",
            },
        )


def test_figure2_from_thresholded_lists(benchmark):
    result = benchmark(until_lists, L1_LIST, L2, 0.5)
    assert result == EXPECTED


def test_figure2_stretched(benchmark):
    """The same structure repeated 500 times along the axis."""
    period = 300
    runs = []
    l2_entries = []
    for block in range(500):
        offset = block * period
        runs.append(Interval(25 + offset, 100 + offset))
        runs.append(Interval(200 + offset, 250 + offset))
        l2_entries.extend(
            [
                ((10 + offset, 50 + offset), 10.0),
                ((55 + offset, 60 + offset), 15.0),
                ((90 + offset, 110 + offset), 12.0),
                ((125 + offset, 175 + offset), 10.0),
            ]
        )
    l2 = SimilarityList.from_entries(l2_entries, 20.0)
    result = benchmark(until_runs, runs, l2)
    assert result.support_size() == 500 * EXPECTED.support_size()
