"""Extension bench: type (2) formulas, direct engine vs SQL system.

The paper implemented the direct algorithms for type (1) only and noted
the SQL route's "flexibility" for the rest; we implement both for
type (2), so the comparison extends to formulas with shared object
variables across temporal operators.  Both systems share the same picture
front end; the measured gap is the table-combination machinery.
"""

import random

import pytest

from repro.bench.harness import time_call
from repro.core.engine import RetrievalEngine
from repro.htl import parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import Relationship, SegmentMetadata, make_object
from repro.sqlbaseline.system import Type2SQLSystem

FORMULA = parse(
    "exists x . (present(x) and type(x) = 'train') "
    "and eventually (present(x) and type(x) = 'station')"
)

SIZES = (100, 400, 800)


def build_video(n_shots, seed=5):
    rng = random.Random(seed)
    objects = [
        ("t1", "train"),
        ("t2", "train"),
        ("s1", "station"),
        ("s2", "station"),
        ("p1", "person"),
    ]
    segments = []
    for __ in range(n_shots):
        population = rng.sample(objects, k=rng.randint(0, 3))
        segments.append(
            SegmentMetadata(
                objects=[
                    make_object(object_id, type_name)
                    for object_id, type_name in population
                ]
            )
        )
    return flat_video("bench-type2", segments)


@pytest.fixture(scope="module", params=SIZES)
def video(request):
    return build_video(request.param)


def test_direct_type2(benchmark, video, report):
    engine = RetrievalEngine()
    size = len(video.nodes_at_level(2))
    direct = time_call(lambda: engine.evaluate_video(FORMULA, video), repeat=3)
    sql = time_call(
        lambda: Type2SQLSystem().evaluate_on_video(FORMULA, video), repeat=1
    )
    assert direct.result == sql.result, "systems disagree on type (2)"
    report(
        "Extension: type (2) formulas, direct vs SQL (seconds)",
        {
            "Shots": size,
            "Direct": f"{direct.seconds:.4f}",
            "SQL-based": f"{sql.seconds:.4f}",
            "Ratio": f"{sql.seconds / direct.seconds:.1f}x",
        },
    )
    benchmark.pedantic(
        lambda: engine.evaluate_video(FORMULA, video), rounds=3, iterations=1
    )


def test_sql_type2(benchmark, video):
    def run():
        return Type2SQLSystem().evaluate_on_video(FORMULA, video)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.maximum == pytest.approx(4.0)
