"""Sharded scatter-gather top-k: scaling and bound-exchange pruning.

Not a paper table — this measures the sharded corpus front end
(:mod:`repro.shard`, ISSUE 6): the corpus is partitioned round-robin
into N shards and a query scatters per-shard top-k evaluations, with
the running global k-th-best score flowing back through a
:class:`~repro.core.topk.BoundExchange` to prune still-running shards.

Two claims are gated here:

* **Identity** — every sharded configuration (any shard count, with or
  without the exchange) returns the byte-identical ranking of the
  unsharded serial scan.
* **Pruning** — on the sparse corpus, the bound exchange scores
  *strictly fewer* segments than naive scatter-gather (each shard
  pruning only against its own local heap).  Segment counts are exact,
  not timed: shards run serially here so the schedule is deterministic.

The dense (50% selectivity) corpus is tracked but not gated: high
density compresses the spread between per-video bounds, so the exchange
may win little there — when it stops winning at all, the run reports
the regression loudly (``dense_regressed`` in the JSON, a ``!`` row in
the table) without failing CI.

Emits ``BENCH_shards.json``.  Set ``BENCH_QUICK=1`` for a seconds-scale
run.
"""

import os
import random
import time
from pathlib import Path

import pytest

from repro.bench.reporting import write_report_json
from repro.core.engine import RetrievalEngine
from repro.core.topk import OUTCOME_OK, OUTCOME_PRUNED, top_k_across_videos
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata
from repro.shard import ShardedCorpus
from repro.workloads.synthetic import random_similarity_list

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_VIDEOS = 8 if QUICK else 16
#: Per-video segments; the full sparse corpus totals ~5k segments.
N_SEGMENTS = 125 if QUICK else 320
K = 10
SPARSE = 0.1
DENSE = 0.5
SHARD_COUNTS = (1, 2, 4)
FORMULA = parse("$P1 and $P2")
REPEAT = 3 if QUICK else 5

RESULTS_PATH = Path("BENCH_shards.json")


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def graded_corpus(density, seed=1997):
    """N flat videos whose similarity ceilings *differ* video to video.

    The per-video ``maximum`` grows with position, so the admissible
    upper bounds spread out — a corpus where every video tops out at the
    same ceiling gives pruning nothing to cut, which is the uniform
    degenerate case, not the case sharding is for.
    """
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(N_VIDEOS):
        video = flat_video(
            f"vid{position:03d}",
            [SegmentMetadata() for __ in range(N_SEGMENTS)],
        )
        database.add(video)
        for name in ("P1", "P2"):
            database.register_atomic(
                name,
                video.name,
                random_similarity_list(
                    N_SEGMENTS,
                    satisfy_fraction=density,
                    maximum=2.0 + 2.5 * position,
                    rng=rng,
                ),
            )
    return database


def scored_segments(result):
    """Segments actually scored: every segment of every evaluated video.

    A pruned video is skipped before any of its segments are scored, so
    the count is exact (and deterministic under serial scatter).
    """
    evaluated = sum(1 for o in result.outcomes if o.status == OUTCOME_OK)
    return evaluated * N_SEGMENTS


@pytest.fixture(scope="module")
def sparse_corpus():
    return graded_corpus(SPARSE)


@pytest.fixture(scope="module")
def dense_corpus():
    return graded_corpus(DENSE, seed=2003)


def _pruning_row(database, n_shards):
    """Deterministic (serial-scatter) naive vs exchange segment counts."""
    engine = RetrievalEngine()
    corpus = ShardedCorpus.from_database(database, n_shards)
    naive = corpus.top_k(
        engine, FORMULA, K, parallelism=None, bound_exchange=False
    )
    exchange = corpus.top_k(
        engine, FORMULA, K, parallelism=None, bound_exchange=True
    )
    assert naive == exchange
    return {
        "naive_scored": scored_segments(naive),
        "exchange_scored": scored_segments(exchange),
        "naive_pruned_videos": sum(
            1 for o in naive.outcomes if o.status == OUTCOME_PRUNED
        ),
        "exchange_pruned_videos": sum(
            1 for o in exchange.outcomes if o.status == OUTCOME_PRUNED
        ),
        "ranking": [
            (r.video, r.segment_id, r.actual, r.maximum) for r in exchange
        ],
    }


def test_shard_scaling_and_pruning(sparse_corpus, dense_corpus, report):
    engine = RetrievalEngine()
    serial_seconds, serial = best_of(
        lambda: top_k_across_videos(
            engine, FORMULA, sparse_corpus, K, parallelism=None, prune=False
        )
    )
    expected = [(r.video, r.segment_id, r.actual, r.maximum) for r in serial]

    # -- scaling vs shard count (parallel scatter, exchange on) ----------
    scaling = {}
    for n_shards in SHARD_COUNTS:
        corpus = ShardedCorpus.from_database(sparse_corpus, n_shards)
        seconds, result = best_of(
            lambda corpus=corpus, n=n_shards: corpus.top_k(
                engine, FORMULA, K, parallelism=n
            )
        )
        assert result == serial, f"ranking diverged at {n_shards} shard(s)"
        scaling[n_shards] = seconds

    # -- pruning effectiveness (serial scatter => deterministic counts) --
    sparse = _pruning_row(sparse_corpus, 4)
    dense = _pruning_row(dense_corpus, 4)
    assert sparse["ranking"] == expected

    total = N_VIDEOS * N_SEGMENTS
    # The gate: on the sparse corpus the exchange must beat naive
    # scatter-gather outright, or cross-shard bound flow is dead weight.
    assert sparse["exchange_scored"] < sparse["naive_scored"], (
        f"bound exchange scored {sparse['exchange_scored']} segments, "
        f"naive scatter-gather {sparse['naive_scored']} — the exchange "
        f"pruned nothing beyond local heaps"
    )

    # Tracked, not gated: report a dense regression loudly.
    dense_regressed = dense["exchange_scored"] >= dense["naive_scored"]

    for label, row in (("sparse 10%", sparse), ("dense 50%", dense)):
        marker = (
            " !regressed" if label.startswith("dense") and dense_regressed
            else ""
        )
        report(
            "Sharded scatter-gather pruning (segments scored, 4 shards)",
            {
                "Corpus": label + marker,
                "Total": total,
                "Naive": row["naive_scored"],
                "Exchange": row["exchange_scored"],
                "Saved": f"{1 - row['exchange_scored'] / row['naive_scored']:.0%}",
                "Pruned videos": (
                    f"{row['naive_pruned_videos']}->"
                    f"{row['exchange_pruned_videos']}"
                ),
            },
        )
    report(
        "Sharded scatter-gather scaling (seconds, sparse corpus)",
        {
            "Videos": N_VIDEOS,
            "Segments/video": N_SEGMENTS,
            "Serial unsharded": f"{serial_seconds:.4f}",
            **{
                f"{n} shard(s)": f"{scaling[n]:.4f}"
                for n in SHARD_COUNTS
            },
        },
    )

    write_report_json(
        RESULTS_PATH,
        {
            "n_videos": N_VIDEOS,
            "n_segments_per_video": N_SEGMENTS,
            "total_segments": total,
            "k": K,
            "shard_counts": list(SHARD_COUNTS),
            "serial_seconds": serial_seconds,
            "scaling_seconds": {
                str(n): scaling[n] for n in SHARD_COUNTS
            },
            "sparse": {
                key: value
                for key, value in sparse.items()
                if key != "ranking"
            },
            "dense": {
                key: value
                for key, value in dense.items()
                if key != "ranking"
            },
            "dense_regressed": dense_regressed,
            "pruning_gate": (
                "sparse.exchange_scored < sparse.naive_scored"
            ),
            "rankings_identical": True,
        },
    )
    if dense_regressed:
        print(
            "\nWARNING: dense-corpus bound exchange no longer beats naive "
            f"scatter-gather ({dense['exchange_scored']} vs "
            f"{dense['naive_scored']} segments scored)"
        )
