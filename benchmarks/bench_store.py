"""Durable-store save/load wall-clock and the cost of verification.

Not a paper table — this measures the crash-safe snapshot store
(DESIGN.md §9).  Two questions:

1. What do a snapshot save and a load cost at the paper's performance
   scale (the sparse 5k-segment configuration of Tables 5–6)?
2. What does integrity checking cost?  A verified load re-hashes every
   artifact against the manifest chain; the acceptance gate is that the
   verified load stays within 25% of the unverified read — SHA-256 over
   a few MB must never dominate JSON parsing and model rebuilding.

Emits ``BENCH_store.json`` in the current working directory.  Set
``BENCH_QUICK=1`` for a seconds-scale run (CI) with a relaxed gate —
millisecond-scale timings make a 25% ratio gate pure noise there.
"""

import os
import random
import time

from repro.bench.reporting import write_report_json
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.serialize import database_to_dict
from repro.store import Store
from repro.workloads.synthetic import random_similarity_list

from benchmarks.bench_atom_tables import build_segments

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_SEGMENTS = 500 if QUICK else 5_000
DENSITY = 0.02
N_ATOMICS = 4
#: SHA-256 over a sub-MB snapshot is sub-millisecond; the measured gap
#: between verified and raw loads is small, so enough repeats are
#: needed for the min to converge below the gate's noise floor.
REPEAT = 3 if QUICK else 7
#: Full mode gates verification overhead at <= 25% over the unverified
#: read; quick mode only smoke-tests that verification does not multiply
#: the load time.
VERIFY_OVERHEAD_LIMIT = 2.0 if QUICK else 0.25

RESULTS_PATH = "BENCH_store.json"


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


def build_database():
    rng = random.Random(20260806)
    database = VideoDatabase()
    video = flat_video(
        "store-bench", build_segments(N_SEGMENTS, DENSITY, rng)
    )
    database.add(video)
    for position in range(N_ATOMICS):
        database.register_atomic(
            f"P{position + 1}",
            video.name,
            random_similarity_list(N_SEGMENTS, rng=rng),
        )
    return database


def test_store_save_load(tmp_path, report):
    database = build_database()
    reference = database_to_dict(database)

    save_store = Store(tmp_path / "save-bench", keep=1)
    save_seconds, info = best_of(lambda: save_store.save(database))

    read_store = Store(tmp_path / "read-bench", keep=1)
    read_store.save(database)
    unverified_seconds, unverified = best_of(
        lambda: read_store.load(verify=False)
    )
    verified_seconds, verified = best_of(lambda: read_store.load())

    # Durability must not change the data: both loads rebuild the
    # reference database exactly, and neither takes a recovery action.
    assert database_to_dict(verified.database) == reference
    assert database_to_dict(unverified.database) == reference
    assert not verified.recovered and not unverified.recovered
    assert verified.verified and not unverified.verified

    total_bytes = sum(
        entry["bytes"] for entry in info.artifacts.values()
    )
    overhead = verified_seconds / unverified_seconds - 1.0
    assert overhead <= VERIFY_OVERHEAD_LIMIT, (
        f"verified load is {overhead:.0%} slower than the unverified "
        f"read (gate {VERIFY_OVERHEAD_LIMIT:.0%}): "
        f"{verified_seconds:.4f}s vs {unverified_seconds:.4f}s"
    )

    report(
        "Durable store, sparse configuration (seconds)",
        {
            "Segments": N_SEGMENTS,
            "Save": f"{save_seconds:.4f}",
            "Load (verified)": f"{verified_seconds:.4f}",
            "Load (raw)": f"{unverified_seconds:.4f}",
            "Verify overhead": f"{overhead:.1%}",
            "Snapshot MB": f"{total_bytes / 1e6:.2f}",
        },
    )
    write_report_json(
        RESULTS_PATH,
        {
            "quick": QUICK,
            "n_segments": N_SEGMENTS,
            "density": DENSITY,
            "n_atomics": N_ATOMICS,
            "snapshot_bytes": total_bytes,
            "save_seconds": save_seconds,
            "load_verified_seconds": verified_seconds,
            "load_unverified_seconds": unverified_seconds,
            "verify_overhead": overhead,
            "verify_overhead_limit": VERIFY_OVERHEAD_LIMIT,
        },
    )
