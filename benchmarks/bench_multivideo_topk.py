"""Multi-video top-k fast path: cold vs warm-cache vs parallel+pruned.

Not a paper table — this measures the retrieval fast path added on top of
the reproduction (ISSUE 1): an :class:`~repro.core.cache.EvaluationCache`
memoizing subformula tables and whole-query lists, bound-based video
pruning, and thread-pool fan-out in
:func:`~repro.core.topk.top_k_across_videos`.  The synthetic corpus is N
flat videos of M segments with ``P1``/``P2`` similarity lists drawn by
:mod:`repro.workloads.synthetic` at the paper's ~10% selectivity.

Also measured: the cost of the similarity-list invariant scan
(:data:`repro.core.simlist.CHECK_INVARIANTS`), which the hot path now
skips by default.

Emits ``BENCH_multivideo.json`` next to the current working directory so
CI logs carry machine-readable numbers.  Set ``BENCH_QUICK=1`` for a
seconds-scale run.
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.bench.reporting import write_report_json
from repro.core.cache import EvaluationCache
from repro.core.engine import RetrievalEngine
from repro.core.simlist import set_invariant_checks
from repro.core.topk import top_k_across_videos
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata
from repro.workloads.synthetic import random_similarity_list

QUICK = bool(os.environ.get("BENCH_QUICK"))
N_VIDEOS = 8 if QUICK else 32
N_SEGMENTS = 500 if QUICK else 5_000
K = 25
PARALLELISM = max(2, min(4, os.cpu_count() or 2))
FORMULA = parse("$P1 and eventually $P2")
REPEAT = 3 if QUICK else 5

RESULTS_PATH = Path("BENCH_multivideo.json")


def best_of(fn, repeat=REPEAT):
    best = None
    value = None
    for __ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, value


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(1997)
    database = VideoDatabase()
    for position in range(N_VIDEOS):
        video = flat_video(
            f"vid{position:03d}",
            [SegmentMetadata() for __ in range(N_SEGMENTS)],
        )
        database.add(video)
        for name in ("P1", "P2"):
            database.register_atomic(
                name,
                video.name,
                random_similarity_list(N_SEGMENTS, rng=rng),
            )
    return database


def test_multivideo_topk_fast_path(corpus, report):
    cold_engine = RetrievalEngine()
    cold_seconds, baseline = best_of(
        lambda: top_k_across_videos(
            cold_engine, FORMULA, corpus, K, parallelism=None, prune=False
        )
    )

    cache = EvaluationCache()
    warm_engine = RetrievalEngine(cache=cache)
    # Populate the cache, then time repeated-query latency.
    top_k_across_videos(warm_engine, FORMULA, corpus, K)
    warm_seconds, warm_result = best_of(
        lambda: top_k_across_videos(warm_engine, FORMULA, corpus, K)
    )

    pruned_seconds, pruned_result = best_of(
        lambda: top_k_across_videos(
            RetrievalEngine(), FORMULA, corpus, K, parallelism=None, prune=True
        )
    )

    parallel_seconds, parallel_result = best_of(
        lambda: top_k_across_videos(
            RetrievalEngine(),
            FORMULA,
            corpus,
            K,
            parallelism=PARALLELISM,
            prune=True,
        )
    )

    # Acceptance: identical rankings, and the warm cache pays off >= 5x.
    assert warm_result == baseline
    assert pruned_result == baseline
    assert parallel_result == baseline
    speedup = cold_seconds / warm_seconds
    assert speedup >= 5.0, (
        f"warm cache only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s)"
    )

    rows = {
        "Videos": N_VIDEOS,
        "Segments": N_SEGMENTS,
        "Cold": f"{cold_seconds:.4f}",
        "Warm cache": f"{warm_seconds:.4f}",
        "Warm speedup": f"{speedup:.1f}x",
        "Pruned": f"{pruned_seconds:.4f}",
        f"Parallel x{PARALLELISM}+pruned": f"{parallel_seconds:.4f}",
    }
    report("Multi-video top-k fast path (seconds)", rows)

    stats = cache.stats()
    payload = {
        "n_videos": N_VIDEOS,
        "n_segments": N_SEGMENTS,
        "k": K,
        "parallelism": PARALLELISM,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": speedup,
        "pruned_seconds": pruned_seconds,
        "parallel_seconds": parallel_seconds,
        "cache": {
            "table_hits": stats.table_hits,
            "table_misses": stats.table_misses,
            "list_hits": stats.list_hits,
            "list_misses": stats.list_misses,
            "hit_rate": stats.hit_rate,
        },
        "rankings_identical": True,
    }
    write_report_json(RESULTS_PATH, payload)


def test_invariant_check_overhead(report):
    """The satellite micro-fix: what the O(n) invariant scan used to cost.

    Measured where it bites — the list merges of :mod:`repro.core.ops`,
    which construct a fresh (previously always re-validated) list per
    operator application.
    """
    from repro.core.ops import and_lists, until_lists

    rng = random.Random(7)
    size = 20_000 if QUICK else 200_000
    left = random_similarity_list(size, rng=rng)
    right = random_similarity_list(size, rng=rng)

    def merge():
        return until_lists(left, and_lists(left, right).scaled(0.5))

    previous = set_invariant_checks(False)
    try:
        unchecked_seconds, unchecked = best_of(merge)
        set_invariant_checks(True)
        checked_seconds, checked = best_of(merge)
    finally:
        set_invariant_checks(previous)

    assert checked == unchecked
    report(
        "Similarity-list invariant-scan overhead (seconds, P1∧P2 then until)",
        {
            "Segments": size,
            "Entries": len(left) + len(right),
            "Checks off (default)": f"{unchecked_seconds:.5f}",
            "Checks on (tests)": f"{checked_seconds:.5f}",
            "Overhead": f"{checked_seconds / unchecked_seconds:.2f}x",
        },
    )
